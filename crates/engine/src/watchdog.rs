//! The no-progress watchdog: one rule set, three arming modes.
//!
//! Every run driver observes steps through [`Timers`] and asks
//! [`check`] after each one. What differs between drivers is only *when*
//! the watchdog may speak — captured by [`WatchdogMode`]:
//!
//! - [`Standard`](WatchdogMode::Standard) (plain/hook runs): armed once
//!   the injection cursor is exhausted; a quiet window is a deadlock, a
//!   delivery-free window with activity is a livelock.
//! - [`DeliveryStarvation`](WatchdogMode::DeliveryStarvation) (protocol
//!   runs with payloads outstanding): retransmissions generate activity
//!   forever, so only delivery starvation counts — as a livelock.
//! - [`ActivityStarvation`](WatchdogMode::ActivityStarvation) (protocol
//!   runs with nothing outstanding): armed once every injection —
//!   including admission-deferred ones — is in; a quiet window is a
//!   deadlock.
//! - [`Overload`](WatchdogMode::Overload) (open-system steady-state
//!   runs): always armed — arrivals never stop, so waiting for cursor
//!   exhaustion would disarm it forever. A quiet window is a deadlock; a
//!   window with activity but no *resolution* (delivery, shed, or
//!   expiry) is a livelock. Saturation with shedding never trips it.
//!
//! All modes measure windows from `max(timer, settle)` where `settle` is
//! the last *transient* fault transition: the watchdog never declares a
//! wedge while an external change could still unblock the network.

use crate::router::Router;
use crate::sim::{Sim, SimError};
use mesh_topo::Topology;

/// Last-progress stamps (1-based step numbers; 0 = never).
/// Serializable as a block: the snapshot subsystem persists it verbatim.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub(crate) struct Timers {
    /// Last step with any activity: an accepted move, an injection, or a
    /// delivery.
    pub(crate) last_activity: u64,
    /// Last step that delivered a packet.
    pub(crate) last_delivery: u64,
    /// Last step that *resolved* a packet — delivered, shed, or expired
    /// it. The overload watchdog's notion of staying live: a saturated
    /// open system that keeps shedding is making progress, not
    /// livelocked.
    pub(crate) last_resolution: u64,
}

impl serde::Deserialize for Timers {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let last_activity = serde::Deserialize::deserialize(v.field("last_activity")?)?;
        let last_delivery: u64 = serde::Deserialize::deserialize(v.field("last_delivery")?)?;
        // Hand-written for v1 snapshot tolerance: snapshots written before
        // the overload watchdog carry no `last_resolution`; in a
        // closed-system run the only resolutions are deliveries, so the
        // delivery stamp is the exact historical value.
        let last_resolution = match v.field("last_resolution")? {
            serde::Value::Null => last_delivery,
            other => serde::Deserialize::deserialize(other)?,
        };
        Ok(Timers {
            last_activity,
            last_delivery,
            last_resolution,
        })
    }
}

impl Timers {
    /// Records the just-finished step `step`.
    pub(crate) fn note(&mut self, step: u64, activity: bool, delivery: bool, resolution: bool) {
        if activity {
            self.last_activity = step;
        }
        if delivery {
            self.last_delivery = step;
        }
        if resolution {
            self.last_resolution = step;
        }
    }
}

/// When the watchdog is allowed to declare a wedge (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WatchdogMode {
    Standard,
    DeliveryStarvation,
    ActivityStarvation,
    /// Open-system steady-state runs: arrivals never stop, so the cursor
    /// gate of `Standard` would keep the watchdog disarmed forever.
    /// Instead, a quiet window is still a deadlock, and a window in which
    /// nothing was *resolved* (no delivery, shed, or expiry) despite
    /// activity is a livelock — "saturated but shedding" counts as
    /// making progress and never trips.
    Overload,
}

/// Applies the configured watchdog (if any) after a step, under `mode`.
pub(crate) fn check<T: Topology, R: Router>(
    sim: &Sim<'_, T, R>,
    mode: WatchdogMode,
    settle: u64,
) -> Result<(), SimError> {
    let Some(w) = sim.config.watchdog else {
        return Ok(());
    };
    let steps = sim.steps();
    let timers = &sim.timers;
    let no_activity = steps.saturating_sub(timers.last_activity.max(settle)) >= w;
    let no_delivery = steps.saturating_sub(timers.last_delivery.max(settle)) >= w;
    match mode {
        WatchdogMode::Standard => {
            if !sim.store.cursor_exhausted() {
                return Ok(());
            }
            if no_activity {
                return Err(SimError::Deadlock(Box::new(sim.diagnostics())));
            }
            if no_delivery {
                return Err(SimError::Livelock(Box::new(sim.diagnostics())));
            }
        }
        WatchdogMode::DeliveryStarvation => {
            if no_delivery {
                return Err(SimError::Livelock(Box::new(sim.diagnostics())));
            }
        }
        WatchdogMode::ActivityStarvation => {
            if sim.injections_exhausted() && no_activity {
                return Err(SimError::Deadlock(Box::new(sim.diagnostics())));
            }
        }
        WatchdogMode::Overload => {
            let no_resolution = steps.saturating_sub(timers.last_resolution.max(settle)) >= w;
            if no_activity {
                return Err(SimError::Deadlock(Box::new(sim.diagnostics())));
            }
            if no_resolution {
                return Err(SimError::Livelock(Box::new(sim.diagnostics())));
            }
        }
    }
    Ok(())
}
