//! Simulation reports: the measurements every experiment consumes.

use crate::queue::QueueArch;
use crate::stats::Summary;
use serde::{Deserialize, Serialize};

/// Summary of a finished (or step-capped) simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Algorithm name (from the router).
    pub algorithm: String,
    /// Workload label (from the routing problem).
    pub workload: String,
    /// Grid side.
    pub n: u32,
    /// Queue architecture and capacity.
    pub arch: QueueArch,
    /// Number of packets in the problem.
    pub total_packets: usize,
    /// Packets delivered so far.
    pub delivered: usize,
    /// Packets destroyed by lossy links.
    pub lost: usize,
    /// Packets rejected at the injection edge by admission control
    /// (`RejectNew` refusals and `DropOldestDeferred` evictions); always 0
    /// under the closed-system default policy.
    pub shed: usize,
    /// Packets whose deadline passed — staged at the edge or queued
    /// in-network (`DeadlineExpiry`); always 0 under other policies.
    pub expired: usize,
    /// Packet-steps spent deferred by injection admission control (a packet
    /// kept out of a full origin queue for five steps counts five).
    pub deferred_injections: u64,
    /// Steps executed.
    pub steps: u64,
    /// True if every packet was delivered.
    pub completed: bool,
    /// Maximum occupancy any single bounded queue ever reached.
    pub max_queue: u32,
    /// Maximum number of packets simultaneously in any node (all queues,
    /// including injection).
    pub max_node_load: u32,
    /// Total link traversals performed.
    pub total_moves: u64,
    /// Destination exchanges performed by the hook (0 without an adversary).
    pub exchanges: u64,
    /// Mean delivery step over delivered packets (steps are 1-based: a packet
    /// delivered during the first step has latency 1).
    pub avg_latency: f64,
    /// Latest delivery step.
    pub max_latency: u64,
}

impl SimReport {
    /// Slowdown relative to the `2n - 2` mesh diameter bound.
    pub fn slowdown_vs_diameter(&self) -> f64 {
        let d = (2 * self.n).saturating_sub(2).max(1) as f64;
        self.steps as f64 / d
    }

    /// Aggregates the scalar metrics of repeated trials of one experiment
    /// cell. Empty input produces an all-zero aggregate.
    pub fn aggregate(reports: &[SimReport]) -> ReportAggregate {
        ReportAggregate {
            trials: reports.len(),
            completed_trials: reports.iter().filter(|r| r.completed).count(),
            steps: Summary::of_u64(reports.iter().map(|r| r.steps)),
            max_queue: Summary::of_u64(reports.iter().map(|r| r.max_queue as u64)),
            max_node_load: Summary::of_u64(reports.iter().map(|r| r.max_node_load as u64)),
            total_moves: Summary::of_u64(reports.iter().map(|r| r.total_moves)),
            exchanges: Summary::of_u64(reports.iter().map(|r| r.exchanges)),
            avg_latency: Summary::of(&reports.iter().map(|r| r.avg_latency).collect::<Vec<f64>>()),
            max_latency: Summary::of_u64(reports.iter().map(|r| r.max_latency)),
            delivered: Summary::of_u64(reports.iter().map(|r| r.delivered as u64)),
            lost: Summary::of_u64(reports.iter().map(|r| r.lost as u64)),
            shed: Summary::of_u64(reports.iter().map(|r| r.shed as u64)),
            expired: Summary::of_u64(reports.iter().map(|r| r.expired as u64)),
            deferred_injections: Summary::of_u64(reports.iter().map(|r| r.deferred_injections)),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} on {} (n={}): steps={}{} maxq={} load={} moves={} delivered={}/{}",
            self.algorithm,
            self.workload,
            self.n,
            self.steps,
            if self.completed { "" } else { " (INCOMPLETE)" },
            self.max_queue,
            self.max_node_load,
            self.total_moves,
            self.delivered,
            self.total_packets,
        );
        if self.shed > 0 || self.expired > 0 {
            s.push_str(&format!(" shed={} expired={}", self.shed, self.expired));
        }
        s
    }
}

/// Cross-trial aggregate of one experiment cell's scalar metrics; produced
/// by [`SimReport::aggregate`] and emitted into `BENCH_*.json` sweeps.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportAggregate {
    /// Trials aggregated.
    pub trials: usize,
    /// Trials where every packet was delivered.
    pub completed_trials: usize,
    pub steps: Summary,
    pub max_queue: Summary,
    pub max_node_load: Summary,
    pub total_moves: Summary,
    pub exchanges: Summary,
    pub avg_latency: Summary,
    pub max_latency: Summary,
    pub delivered: Summary,
    pub lost: Summary,
    pub shed: Summary,
    pub expired: Summary,
    pub deferred_injections: Summary,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(steps: u64, moves: u64, completed: bool) -> SimReport {
        SimReport {
            algorithm: "test".into(),
            workload: "wl".into(),
            n: 8,
            arch: QueueArch::Central { k: 2 },
            total_packets: 64,
            delivered: if completed { 64 } else { 32 },
            lost: 0,
            shed: 0,
            expired: 0,
            deferred_injections: 0,
            steps,
            completed,
            max_queue: 2,
            max_node_load: 3,
            total_moves: moves,
            exchanges: 0,
            avg_latency: steps as f64 / 2.0,
            max_latency: steps,
        }
    }

    #[test]
    fn aggregate_over_trials() {
        let agg = SimReport::aggregate(&[
            report(10, 100, true),
            report(14, 120, true),
            report(30, 90, false),
        ]);
        assert_eq!(agg.trials, 3);
        assert_eq!(agg.completed_trials, 2);
        assert!((agg.steps.mean - 18.0).abs() < 1e-9);
        assert_eq!(agg.steps.min, 10.0);
        assert_eq!(agg.steps.max, 30.0);
        assert_eq!(agg.total_moves.max, 120.0);
        assert_eq!(agg.delivered.min, 32.0);
    }

    #[test]
    fn aggregate_empty_is_all_zero() {
        let agg = SimReport::aggregate(&[]);
        assert_eq!(agg.trials, 0);
        assert_eq!(agg.steps.count, 0);
        assert_eq!(agg.steps.mean, 0.0);
    }
}
