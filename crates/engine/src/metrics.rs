//! Simulation reports: the measurements every experiment consumes.

use crate::queue::QueueArch;
use serde::{Deserialize, Serialize};

/// Summary of a finished (or step-capped) simulation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Algorithm name (from the router).
    pub algorithm: String,
    /// Workload label (from the routing problem).
    pub workload: String,
    /// Grid side.
    pub n: u32,
    /// Queue architecture and capacity.
    pub arch: QueueArch,
    /// Number of packets in the problem.
    pub total_packets: usize,
    /// Packets delivered so far.
    pub delivered: usize,
    /// Steps executed.
    pub steps: u64,
    /// True if every packet was delivered.
    pub completed: bool,
    /// Maximum occupancy any single bounded queue ever reached.
    pub max_queue: u32,
    /// Maximum number of packets simultaneously in any node (all queues,
    /// including injection).
    pub max_node_load: u32,
    /// Total link traversals performed.
    pub total_moves: u64,
    /// Destination exchanges performed by the hook (0 without an adversary).
    pub exchanges: u64,
    /// Mean delivery step over delivered packets (steps are 1-based: a packet
    /// delivered during the first step has latency 1).
    pub avg_latency: f64,
    /// Latest delivery step.
    pub max_latency: u64,
}

impl SimReport {
    /// Slowdown relative to the `2n - 2` mesh diameter bound.
    pub fn slowdown_vs_diameter(&self) -> f64 {
        let d = (2 * self.n).saturating_sub(2).max(1) as f64;
        self.steps as f64 / d
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} on {} (n={}): steps={}{} maxq={} load={} moves={} delivered={}/{}",
            self.algorithm,
            self.workload,
            self.n,
            self.steps,
            if self.completed { "" } else { " (INCOMPLETE)" },
            self.max_queue,
            self.max_node_load,
            self.total_moves,
            self.delivered,
            self.total_packets,
        )
    }
}
