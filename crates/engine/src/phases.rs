//! The §2 step, decomposed into named phases over a shared [`StepCtx`].
//!
//! [`STEP_PIPELINE`] is the single visible statement of phase order;
//! [`Sim::step_with_hook`](crate::sim::Sim::step_with_hook) executes
//! exactly that list. Each phase maps onto the paper's step anatomy:
//!
//! | phase | §2 sentence |
//! |---|---|
//! | [`Phase::Inject`] | dynamic-setting remark (§5): due packets enter their origin queues as space permits |
//! | [`Phase::Route`] | (a) every outqueue policy selects at most one packet per outlink |
//! | [`Phase::EnforceFaults`] | fault-model extension: down links drop the move, lossy links destroy the packet in flight |
//! | [`Phase::Adversary`] | (b) the adversary observes the schedule and may exchange destinations |
//! | [`Phase::Accept`] | (c) every inqueue policy decides which offered arrivals to accept |
//! | [`Phase::Transmit`] | (d) scheduled-and-accepted packets move; arrivals at their destination are delivered |
//! | [`Phase::Audit`] | engine guarantee: capacity bounds hold, occupancy metrics update |
//! | [`Phase::UpdateState`] | (e) node and packet states update within the information the model permits |
//!
//! Fault enforcement that *gates a policy invocation* — a stalled node's
//! outqueue/inqueue is never consulted, a degraded node's acceptance is
//! clamped after its inqueue ran — necessarily lives inside the
//! route/accept/inject phases; only link faults act on the schedule
//! itself and form their own phase.

use crate::hook::{HookCtx, ScheduledMove, StepHook};
use crate::router::Router;
use crate::storage::{Loc, NodeGrid, PacketStore};
use crate::view::{Arrival, FullView, PackedArrival, PackedView};
use mesh_faults::CompiledFaults;
use mesh_topo::{Coord, DirSet, Topology, ALL_DIRS};
use mesh_traffic::PacketId;

/// One named phase of the step pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Admission control: stage due packets and drain them into origin
    /// queues while capacity (and faults) permit.
    Inject,
    /// §2 (a): outqueue policies schedule at most one packet per outlink.
    Route,
    /// Link faults act on the schedule: down links drop moves before the
    /// adversary ever sees them; lossy links convert moves into losses.
    EnforceFaults,
    /// §2 (b): the adversary hook observes the (fault-filtered) schedule
    /// and may exchange destinations.
    Adversary,
    /// §2 (c): inqueue policies accept or reject offered arrivals;
    /// degraded nodes are clamped to their reduced capacity.
    Accept,
    /// §2 (d): accepted packets move (delivering at their destination);
    /// lossy-link packets are destroyed in flight.
    Transmit,
    /// Capacity validation and occupancy metrics over the active nodes.
    Audit,
    /// §2 (e): end-of-step node and packet state update.
    UpdateState,
}

/// The step's phase order. This list *is* the engine's step semantics:
/// the dispatcher runs it verbatim, in order.
pub const STEP_PIPELINE: [Phase; 8] = [
    Phase::Inject,
    Phase::Route,
    Phase::EnforceFaults,
    Phase::Adversary,
    Phase::Accept,
    Phase::Transmit,
    Phase::Audit,
    Phase::UpdateState,
];

/// Admission-control policy at the injection edge — the open-system
/// overload seam (DESIGN.md §12).
///
/// Shedding policies act on *staged* packets (those whose injection time
/// has come but which have not yet entered their origin queue): bounded
/// queues already make in-network memory finite, so backlog control is an
/// edge decision. [`DeadlineExpiry`](AdmissionPolicy::DeadlineExpiry) goes
/// one step further and expires stale packets *inside* the network too —
/// edge-only shedding cannot un-fill internal queues once they gridlock.
/// The whole seam runs inside the inject phase, which executes on the
/// coordinator even under tile-sharded execution — every policy is
/// therefore byte-identical across `--tile-threads` by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Closed-system default: staged packets wait outside the network
    /// until their origin queue has room, however long that takes.
    #[default]
    DeferIndefinitely,
    /// A packet that cannot enter the network in the very step it becomes
    /// due is shed immediately; nothing is ever deferred.
    RejectNew,
    /// Deferred packets queue at the edge, but each origin keeps at most
    /// `max_deferred`; beyond that the *oldest* deferred packet is shed to
    /// bound the edge backlog. `max_deferred = 0` behaves like
    /// [`RejectNew`](AdmissionPolicy::RejectNew).
    DropOldestDeferred { max_deferred: u32 },
    /// Per-packet deadlines: a packet `ttl` or more steps past its
    /// injection time expires wherever it is — still staged at the edge
    /// or already queued inside the network. In-network expiry is what
    /// keeps bounded-queue routers on a goodput plateau past saturation:
    /// stale packets are evicted from the queues they clog instead of
    /// gridlocking live traffic behind them.
    DeadlineExpiry { ttl: u64 },
}

impl serde::Serialize for AdmissionPolicy {
    fn serialize(&self) -> serde::Value {
        match self {
            AdmissionPolicy::DeferIndefinitely => serde::Value::String("DeferIndefinitely".into()),
            AdmissionPolicy::RejectNew => serde::Value::String("RejectNew".into()),
            AdmissionPolicy::DropOldestDeferred { max_deferred } => serde::Value::Object(vec![(
                "DropOldestDeferred".into(),
                serde::Value::U64(*max_deferred as u64),
            )]),
            AdmissionPolicy::DeadlineExpiry { ttl } => {
                serde::Value::Object(vec![("DeadlineExpiry".into(), serde::Value::U64(*ttl))])
            }
        }
    }
}

impl serde::Deserialize for AdmissionPolicy {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            // Snapshots written before the admission seam existed carry no
            // policy field; those runs were closed-system by definition.
            serde::Value::Null => Ok(AdmissionPolicy::DeferIndefinitely),
            serde::Value::String(s) => match s.as_str() {
                "DeferIndefinitely" => Ok(AdmissionPolicy::DeferIndefinitely),
                "RejectNew" => Ok(AdmissionPolicy::RejectNew),
                other => Err(serde::Error::custom(format!(
                    "unknown admission policy '{other}'"
                ))),
            },
            serde::Value::Object(pairs) if pairs.len() == 1 => match pairs[0].0.as_str() {
                "DropOldestDeferred" => Ok(AdmissionPolicy::DropOldestDeferred {
                    max_deferred: serde::Deserialize::deserialize(&pairs[0].1)?,
                }),
                "DeadlineExpiry" => Ok(AdmissionPolicy::DeadlineExpiry {
                    ttl: serde::Deserialize::deserialize(&pairs[0].1)?,
                }),
                other => Err(serde::Error::custom(format!(
                    "unknown admission policy '{other}'"
                ))),
            },
            _ => Err(serde::Error::custom("malformed admission policy")),
        }
    }
}

/// Monotone run counters, updated by phases and read by reports.
/// Serializable as a block: the snapshot subsystem persists it verbatim.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub(crate) struct Progress {
    pub(crate) steps: u64,
    pub(crate) delivered: usize,
    pub(crate) lost: usize,
    /// Packets rejected at the injection edge by admission control
    /// (`RejectNew` refusals and `DropOldestDeferred` evictions).
    pub(crate) shed: usize,
    /// Packets whose deadline passed at the edge or in-network
    /// (`DeadlineExpiry`).
    pub(crate) expired: usize,
    pub(crate) total_moves: u64,
    pub(crate) exchanges: u64,
    pub(crate) max_queue: u32,
    pub(crate) max_node_load: u32,
    /// Admission-control pressure: packet-steps spent staged outside the
    /// network because the origin queue had no room (or the node was
    /// stalled). One packet deferred for five steps counts five.
    pub(crate) deferred_injections: u64,
}

impl serde::Deserialize for Progress {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        // Hand-written so that counters added after the v1 snapshot format
        // (shed, expired) tolerate older snapshots: `Value::field` yields
        // Null for a missing key, and a closed-system run can never have
        // shed or expired anything, so Null deserializes to zero.
        fn counter(v: &serde::Value) -> Result<usize, serde::Error> {
            match v {
                serde::Value::Null => Ok(0),
                other => serde::Deserialize::deserialize(other),
            }
        }
        Ok(Progress {
            steps: serde::Deserialize::deserialize(v.field("steps")?)?,
            delivered: serde::Deserialize::deserialize(v.field("delivered")?)?,
            lost: serde::Deserialize::deserialize(v.field("lost")?)?,
            shed: counter(v.field("shed")?)?,
            expired: counter(v.field("expired")?)?,
            total_moves: serde::Deserialize::deserialize(v.field("total_moves")?)?,
            exchanges: serde::Deserialize::deserialize(v.field("exchanges")?)?,
            max_queue: serde::Deserialize::deserialize(v.field("max_queue")?)?,
            max_node_load: serde::Deserialize::deserialize(v.field("max_node_load")?)?,
            deferred_injections: serde::Deserialize::deserialize(v.field("deferred_injections")?)?,
        })
    }
}

/// Per-step protocol events: packets delivered / destroyed during the
/// most recent step, in deterministic (schedule) order. Consumed by
/// `Sim::run_with_protocol`; cleared at the start of every step.
#[derive(Default)]
pub(crate) struct EventLog {
    pub(crate) delivered: Vec<PacketId>,
    pub(crate) lost: Vec<PacketId>,
}

/// Workhorse buffers reused across steps (perf-book guidance: zero
/// allocation in the hot loop — every phase works in place).
#[derive(Default)]
pub(crate) struct StepBufs {
    pub(crate) views: Vec<FullView>,
    pub(crate) arrivals: Vec<Arrival<FullView>>,
    pub(crate) accept: Vec<bool>,
    pub(crate) schedule: Vec<ScheduledMove>,
    pub(crate) order: Vec<u32>,
    pub(crate) accepted: Vec<bool>,
    pub(crate) states: Vec<u64>,
    pub(crate) lost_moves: Vec<ScheduledMove>,
    /// The active-node snapshot the route phase drains from the grid.
    pub(crate) snapshot: Vec<u32>,
    /// Scratch for the inject phase's pending-node sweep.
    pub(crate) inject_nodes: Vec<u32>,
    /// Acceptance groups: `(start, end)` ranges into `order`, one per target
    /// node, in target-node order. Computed by the accept phase; read by the
    /// tile workers.
    pub(crate) groups: Vec<(u32, u32)>,
    /// Staged end-of-step packet-state writes `(packet, new state)`.
    pub(crate) state_writes: Vec<(PacketId, u64)>,
    /// Bit-packed resident descriptors for mask-capable routers (the fast
    /// path's replacement for `views`).
    pub(crate) masks: Vec<PackedView>,
    /// Bit-packed arrival descriptors for mask-capable routers.
    pub(crate) arr_packed: Vec<PackedArrival>,
    /// Per-target move counts for the counting group-by in `accept_prep`.
    /// Sized `n²` on first use and kept all-zero between steps (only the
    /// `touched` entries are ever dirtied, and they are re-zeroed on exit).
    pub(crate) counts: Vec<u32>,
    /// The distinct target-node ids dirtied in `counts` this step.
    pub(crate) touched: Vec<u32>,
    /// Packets whose destinations the adversary exchanged this step — the
    /// engine refreshes their cached profitable masks after the hook runs.
    pub(crate) exchanged: Vec<PacketId>,
}

/// Everything one step needs, as split borrows of the simulation's parts:
/// phases take `&mut StepCtx` and the borrow checker sees disjoint fields.
pub(crate) struct StepCtx<'a, 't, T: Topology, R: Router> {
    /// The 0-based step being executed (the paper's step `t0 + 1`).
    pub(crate) t0: u64,
    pub(crate) topo: &'t T,
    pub(crate) router: &'a R,
    pub(crate) validate: bool,
    pub(crate) admission: AdmissionPolicy,
    pub(crate) faults: Option<&'a CompiledFaults>,
    pub(crate) store: &'a mut PacketStore,
    pub(crate) grid: &'a mut NodeGrid,
    pub(crate) node_state: &'a mut [R::NodeState],
    pub(crate) progress: &'a mut Progress,
    pub(crate) events: &'a mut EventLog,
    pub(crate) bufs: &'a mut StepBufs,
}

/// Builds the bit-packed descriptors of all packets queued at node `ni`,
/// in the same flattened slot order as [`build_views`] — one `u32` per
/// packet instead of a 40-byte view struct. The grid's slot index is the
/// packed slot index by construction (Central: 0; PerInlink: `0..4` =
/// inlinks, 4 = injection).
pub(crate) fn build_packed<T: Topology>(
    topo: &T,
    store: &PacketStore,
    grid: &NodeGrid,
    ni: usize,
    node: Coord,
    out: &mut Vec<PackedView>,
) {
    out.clear();
    for (slot, q) in grid.node_queues(ni) {
        for (pos, pid) in q.iter().enumerate() {
            let mask = DirSet::from_bits(store.mask[pid.index()]);
            debug_assert_eq!(
                mask,
                topo.profitable(node, store.dst[pid.index()]),
                "cached profitable mask out of sync at {node:?}"
            );
            out.push(PackedView::new(mask, slot, pos as u32));
        }
    }
}

/// Builds the views of all packets queued at node `ni`, reading straight
/// from the [`PacketStore`] and [`NodeGrid`] — no intermediate copies.
pub(crate) fn build_views<T: Topology>(
    topo: &T,
    store: &PacketStore,
    grid: &NodeGrid,
    ni: usize,
    node: Coord,
    out: &mut Vec<FullView>,
) {
    out.clear();
    for (slot, q) in grid.node_queues(ni) {
        let kind = grid.slot_kind(slot);
        for (pos, pid) in q.iter().enumerate() {
            let i = pid.index();
            out.push(FullView {
                id: *pid,
                src: store.src[i],
                dst: store.dst[i],
                state: store.state[i],
                profitable: topo.profitable(node, store.dst[i]),
                queue: kind,
                pos: pos as u32,
            });
        }
    }
}

/// Moves packets whose injection time has come into their origin queues,
/// capacity (and faults) permitting. Returns whether any packet entered
/// the network.
pub(crate) fn inject<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) -> bool {
    let t = ctx.t0;
    let mut injected = false;
    // Closed-system fast path: under `DeferIndefinitely` with no fault
    // plan, a due packet whose origin queue has room enters it directly —
    // the stage-into-bucket/drain-in-sorted-order dance below would admit
    // exactly these packets into exactly these (per-node independent)
    // queues in exactly this order, so skipping the bucket is free of
    // observable effect and saves a HashMap + VecDeque round trip per
    // packet. Anything that cannot enter falls back to the bucket.
    let direct_entry =
        ctx.faults.is_none() && matches!(ctx.admission, AdmissionPolicy::DeferIndefinitely);
    let origin_kind = ctx.grid.arch().origin_queue();
    let origin_cap = ctx.grid.arch().capacity(origin_kind);
    // Stage newly due packets into per-node pending queues.
    while ctx.store.inject_cursor < ctx.store.inject_order.len() {
        let pid = ctx.store.inject_order[ctx.store.inject_cursor];
        if ctx.store.inject_at[pid.index()] > t {
            break;
        }
        ctx.store.inject_cursor += 1;
        let src = ctx.store.src[pid.index()];
        if src == ctx.store.dst[pid.index()] {
            // Trivial packet: delivered without entering the network.
            ctx.store.loc[pid.index()] = Loc::Delivered;
            ctx.store.delivered_at[pid.index()] = t;
            ctx.progress.delivered += 1;
            ctx.events.delivered.push(pid);
            continue;
        }
        let ni = ctx.grid.node_index(src);
        if direct_entry
            && origin_cap.is_none_or(|cv| ctx.grid.queue_len(ni, origin_kind.slot()) < cv as usize)
        {
            ctx.grid.push(src, origin_kind, pid);
            ctx.store.loc[pid.index()] = Loc::At(src);
            ctx.store.queue_of[pid.index()] = origin_kind;
            ctx.store.mask[pid.index()] =
                ctx.topo.profitable(src, ctx.store.dst[pid.index()]).bits();
            injected = true;
            ctx.grid.mark_active(ni);
            continue;
        }
        ctx.grid
            .pending
            .entry(ni as u32)
            .or_default()
            .push_back(pid);
        ctx.grid.mark_active(ni);
    }
    // `DeadlineExpiry` acts before the drain, and inside the network as
    // well as at the edge: a stale packet clogging a bounded queue is
    // dropped wherever it sits, freeing capacity for live traffic.
    // Edge-only shedding cannot un-fill internal queues, so without the
    // in-network sweep central-queue routers congestion-collapse past
    // saturation instead of degrading to a goodput plateau. Sorted node
    // order, like the drain below, keeps HashMap iteration order out of
    // the engine.
    if let AdmissionPolicy::DeadlineExpiry { ttl } = ctx.admission {
        let inject_at = &ctx.store.inject_at;
        let loc = &mut ctx.store.loc;
        let expired = &mut ctx.progress.expired;
        ctx.grid.expire_queued(t, ttl, inject_at, |pid| {
            loc[pid.index()] = Loc::Expired;
            *expired += 1;
        });
        let nodes = &mut ctx.bufs.inject_nodes;
        nodes.clear();
        nodes.extend(ctx.grid.pending.keys().copied());
        nodes.sort_unstable();
        for &ni in nodes.iter() {
            let Some(q) = ctx.grid.pending.get_mut(&ni) else {
                continue;
            };
            // Rotate through the bucket once: each packet is popped
            // exactly once and survivors are pushed back in order.
            for _ in 0..q.len() {
                let pid = q.pop_front().expect("bucket length counted above");
                if t >= ctx.store.inject_at[pid.index()].saturating_add(ttl) {
                    ctx.store.loc[pid.index()] = Loc::Expired;
                    ctx.progress.expired += 1;
                } else {
                    q.push_back(pid);
                }
            }
            if q.is_empty() {
                ctx.grid.pending.remove(&ni);
            }
        }
    }
    if !ctx.grid.has_pending() {
        return injected;
    }
    // Drain pending into origin queues while capacity lasts. A stalled
    // node injects nothing; a degraded node only up to its reduced
    // capacity. Sorted node order: behaviorally inert (every pending node
    // is already active and per-node draining is independent), but it
    // keeps the engine independent of HashMap iteration order by
    // construction.
    let origin = ctx.grid.arch().origin_queue();
    let cap = ctx.grid.arch().capacity(origin);
    // Open-system injection throttling: when the origin queue is a
    // bounded queue *shared with transit* (the Central arch), reserve one
    // slot for arrivals. The inject phase runs before accept, so without
    // the reserve sustained injection refills every freed slot first and
    // transit starves — the whole mesh gridlocks at a trickle no matter
    // what the edge sheds. The closed-system default keeps the paper's
    // drain-when-room semantics untouched.
    let cap = match (cap, ctx.admission) {
        (Some(cv), AdmissionPolicy::DeferIndefinitely) => Some(cv),
        (Some(cv), _) => Some(cv.saturating_sub(1)),
        (None, _) => None,
    };
    // Deadline runs drain freshest-first (see `pop_pending_back`); every
    // other policy drains in injection order.
    let freshest_first = matches!(ctx.admission, AdmissionPolicy::DeadlineExpiry { .. });
    let nodes = &mut ctx.bufs.inject_nodes;
    nodes.clear();
    nodes.extend(ctx.grid.pending.keys().copied());
    nodes.sort_unstable();
    for &ni in nodes.iter() {
        let c = ctx.grid.coord_of(ni as usize);
        let cap = match ctx.faults {
            Some(f) if f.node_stalled(t, c) => {
                ctx.grid.mark_active(ni as usize);
                continue;
            }
            Some(f) => cap.map(|k| k.saturating_sub(f.degraded_slots(t, c))),
            None => cap,
        };
        loop {
            let room = match cap {
                Some(cv) => ctx.grid.queue_len(ni as usize, origin.slot()) < cv as usize,
                None => true,
            };
            if !room {
                break;
            }
            let popped = if freshest_first {
                ctx.grid.pop_pending_back(ni)
            } else {
                ctx.grid.pop_pending(ni)
            };
            let Some(pid) = popped else {
                break;
            };
            ctx.grid.push(c, origin, pid);
            ctx.store.loc[pid.index()] = Loc::At(c);
            ctx.store.queue_of[pid.index()] = origin;
            ctx.store.mask[pid.index()] = ctx.topo.profitable(c, ctx.store.dst[pid.index()]).bits();
            injected = true;
        }
        ctx.grid.mark_active(ni as usize);
    }
    // Post-drain shedding: whatever could not enter this step either
    // waits (DeferIndefinitely / DeadlineExpiry), is refused outright
    // (RejectNew), or is trimmed oldest-first to the per-origin edge
    // budget (DropOldestDeferred). The sorted node list from the drain is
    // reused, so shedding order is deterministic as well; buckets the
    // drain already emptied come back `None` and are skipped.
    match ctx.admission {
        AdmissionPolicy::RejectNew => {
            for &ni in nodes.iter() {
                let Some(q) = ctx.grid.pending.get_mut(&ni) else {
                    continue;
                };
                while let Some(pid) = q.pop_front() {
                    ctx.store.loc[pid.index()] = Loc::Shed;
                    ctx.progress.shed += 1;
                }
                ctx.grid.pending.remove(&ni);
            }
        }
        AdmissionPolicy::DropOldestDeferred { max_deferred } => {
            for &ni in nodes.iter() {
                let Some(q) = ctx.grid.pending.get_mut(&ni) else {
                    continue;
                };
                while q.len() > max_deferred as usize {
                    let pid = q.pop_front().expect("length checked above");
                    ctx.store.loc[pid.index()] = Loc::Shed;
                    ctx.progress.shed += 1;
                }
                if q.is_empty() {
                    ctx.grid.pending.remove(&ni);
                }
            }
        }
        AdmissionPolicy::DeferIndefinitely | AdmissionPolicy::DeadlineExpiry { .. } => {}
    }
    // Whatever is still staged was deferred by admission control this
    // step: the origin queue is full (or the node stalled), so the
    // packet waits outside the network instead of overflowing.
    ctx.progress.deferred_injections += ctx
        .grid
        .pending
        .values()
        .map(|q| q.len() as u64)
        .sum::<u64>();
    injected
}

/// §2 (a) for a single node: a loaded, unstalled node's outqueue policy
/// schedules at most one packet per outlink; moves are emitted in
/// [`ALL_DIRS`] order. Shared verbatim by the sequential route phase and
/// the tile workers, so both produce identical per-node schedules.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_node<T: Topology, R: Router>(
    t0: u64,
    topo: &T,
    router: &R,
    validate: bool,
    faults: Option<&CompiledFaults>,
    store: &PacketStore,
    grid: &NodeGrid,
    ni: usize,
    state: &mut R::NodeState,
    views: &mut Vec<FullView>,
    masks: &mut Vec<PackedView>,
    emit: &mut impl FnMut(ScheduledMove),
) {
    if grid.node_load(ni) == 0 {
        return;
    }
    let node = grid.coord_of(ni);
    // A stalled node sends nothing this step (its packets stay put;
    // the active-set rebuild in transmit keeps it scheduled for later).
    if let Some(f) = faults {
        if f.node_stalled(t0, node) {
            return;
        }
    }
    let mut out = [None::<usize>; 4];
    let mut single = None;
    let packed = router.mask_capable();
    let len = if packed {
        // Fast path: one u32 per resident, no per-packet view structs. The
        // packed policy is contractually decision-identical to the view
        // policy (cross-checked by the differential battery), so the moves
        // emitted below are byte-identical either way.
        if grid.node_load(ni) == 1 {
            // Small-node fast path — the overwhelmingly common case once a
            // run spreads out: the lone resident's descriptor comes
            // straight off the occupancy bitmask, skipping the slot walk
            // and per-slot enumerate. The router policy still runs (node
            // state must advance identically); only descriptor-building
            // machinery is bypassed.
            let slot = grid.occ_mask(ni).trailing_zeros() as usize;
            let pid = grid.queue(ni, slot)[0];
            let mask = DirSet::from_bits(store.mask[pid.index()]);
            debug_assert_eq!(
                mask,
                topo.profitable(node, store.dst[pid.index()]),
                "cached profitable mask out of sync at {node:?}"
            );
            masks.clear();
            masks.push(PackedView::new(mask, slot, 0));
            single = Some(pid);
        } else {
            build_packed(topo, store, grid, ni, node, masks);
        }
        router.outqueue_packed(t0, node, state, masks, &mut out);
        masks.len()
    } else {
        build_views(topo, store, grid, ni, node, views);
        router.outqueue(t0, node, state, views, &mut out);
        views.len()
    };
    if validate {
        #[allow(clippy::needless_range_loop)]
        for a in 0..4 {
            if let Some(i) = out[a] {
                assert!(
                    i < len,
                    "{}: outqueue index out of range at {node} step {t0}",
                    router.name()
                );
                for b in (a + 1)..4 {
                    assert!(
                        out[b] != Some(i),
                        "{}: packet scheduled on two outlinks at {node} step {t0}",
                        router.name()
                    );
                }
            }
        }
    }
    for d in ALL_DIRS {
        if let Some(i) = out[d.index()] {
            let (pkt, profitable) = if packed {
                // The small-node fast path already holds the lone resident;
                // multi-packet nodes index the arena's occupancy walk.
                let pkt = single.unwrap_or_else(|| grid.nth_packet(ni, i));
                (pkt, masks[i].profitable())
            } else {
                (views[i].id, views[i].profitable)
            };
            let to = topo.neighbor(node, d).unwrap_or_else(|| {
                panic!(
                    "{}: scheduled {pkt:?} on missing {d} outlink of {node}",
                    router.name()
                )
            });
            if validate && router.is_minimal() {
                assert!(
                    profitable.contains(d),
                    "{}: non-minimal move {pkt:?} {d} from {node} (profitable {profitable:?}) step {t0}",
                    router.name()
                );
            }
            emit(ScheduledMove {
                pkt,
                from: node,
                to,
                travel: d,
            });
        }
    }
}

/// §2 (a): every loaded, unstalled node's outqueue policy schedules at
/// most one packet per outlink. Fills `bufs.schedule` in deterministic
/// node-then-direction order; validation panics on malformed schedules.
pub(crate) fn route<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    let t0 = ctx.t0;
    ctx.bufs.schedule.clear();
    ctx.bufs.lost_moves.clear();
    ctx.grid.drain_active_into(&mut ctx.bufs.snapshot);
    let StepBufs {
        views,
        schedule,
        snapshot,
        masks,
        ..
    } = &mut *ctx.bufs;
    for &sn in snapshot.iter() {
        let ni = sn as usize;
        route_node(
            t0,
            ctx.topo,
            ctx.router,
            ctx.validate,
            ctx.faults,
            ctx.store,
            ctx.grid,
            ni,
            &mut ctx.node_state[ni],
            views,
            masks,
            &mut |m| schedule.push(m),
        );
    }
}

/// Link-fault enforcement on the schedule, *before* the adversary hook
/// observes it, so the exchanger only ever sees moves that can happen.
/// A down link carries nothing: the move is dropped. A *lossy* link does
/// carry the packet — it just never arrives: the transmission happens
/// (the sender's queue slot frees), but the packet is destroyed in
/// flight (resolved in the transmit phase).
pub(crate) fn enforce_faults<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    let Some(f) = ctx.faults else { return };
    let t0 = ctx.t0;
    let lost_moves = &mut ctx.bufs.lost_moves;
    ctx.bufs.schedule.retain(|m| {
        if f.link_down(t0, m.from, m.travel) {
            return false;
        }
        if f.link_lossy(t0, m.from, m.travel) {
            lost_moves.push(*m);
            return false;
        }
        true
    });
}

/// §2 (b): the adversary hook observes the schedule and may exchange
/// destinations.
pub(crate) fn adversary<T: Topology, R: Router, H: StepHook>(
    ctx: &mut StepCtx<'_, '_, T, R>,
    hook: &mut H,
) {
    ctx.bufs.exchanged.clear();
    let mut hctx = HookCtx {
        t: ctx.t0 + 1,
        n: ctx.grid.n(),
        moves: &ctx.bufs.schedule,
        dst: &mut ctx.store.dst,
        loc: &ctx.store.loc,
        src: &ctx.store.src,
        exchanges: &mut ctx.progress.exchanges,
        dirty: &mut ctx.bufs.exchanged,
    };
    hook.on_scheduled(&mut hctx);
    refresh_masks(ctx.topo, ctx.store, &ctx.bufs.exchanged);
}

/// Refreshes the cached profitable masks of packets whose destinations the
/// adversary exchanged. A packet outside the network keeps mask 0 — it is
/// recomputed at injection anyway.
pub(crate) fn refresh_masks<T: Topology>(topo: &T, store: &mut PacketStore, dirty: &[PacketId]) {
    for &pid in dirty {
        if let Loc::At(c) = store.loc[pid.index()] {
            store.mask[pid.index()] = topo.profitable(c, store.dst[pid.index()]).bits();
        }
    }
}

/// §2 (c) for one target node: the inqueue policy of the (unstalled)
/// target of moves `order[start..end]` accepts or rejects each offer;
/// degraded nodes are clamped to their reduced capacity. Decisions are
/// emitted as `(schedule index, accepted)`. Shared verbatim by the
/// sequential accept phase and the tile workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn accept_group<T: Topology, R: Router>(
    t0: u64,
    topo: &T,
    router: &R,
    faults: Option<&CompiledFaults>,
    store: &PacketStore,
    grid: &NodeGrid,
    schedule: &[ScheduledMove],
    order: &[u32],
    start: usize,
    end: usize,
    state: &mut R::NodeState,
    views: &mut Vec<FullView>,
    arrivals: &mut Vec<Arrival<FullView>>,
    arr_packed: &mut Vec<PackedArrival>,
    accept: &mut Vec<bool>,
    emit: &mut impl FnMut(u32, bool),
) {
    let target = schedule[order[start] as usize].to;
    let ni = grid.node_index(target);
    // A stalled node accepts nothing: the whole arrival group stays
    // rejected and its router never observes the offered packets.
    if let Some(f) = faults {
        if f.node_stalled(t0, target) {
            return;
        }
    }
    accept.clear();
    accept.resize(end - start, false);
    if router.mask_capable() {
        // Fast path: residents collapse to the arena's own per-slot length
        // row (handed to the policy as-is, no copy) and each arrival to
        // one byte.
        let queue_lens = grid.queue_lens_of(ni);
        arr_packed.clear();
        for gi in start..end {
            let m = schedule[order[gi] as usize];
            // §2: profitable outlinks of scheduled packets are measured
            // from the node they are coming from — which is exactly where
            // the packet still sits, so its cached mask is that set.
            let mask = DirSet::from_bits(store.mask[m.pkt.index()]);
            debug_assert_eq!(
                mask,
                topo.profitable(m.from, store.dst[m.pkt.index()]),
                "cached profitable mask out of sync at {:?}",
                m.from
            );
            arr_packed.push(PackedArrival::new(mask, m.travel));
        }
        router.inqueue_packed(t0, target, state, queue_lens, arr_packed, accept);
    } else {
        build_views(topo, store, grid, ni, target, views);
        arrivals.clear();
        for gi in start..end {
            let m = schedule[order[gi] as usize];
            let i = m.pkt.index();
            arrivals.push(Arrival {
                view: FullView {
                    id: m.pkt,
                    src: store.src[i],
                    dst: store.dst[i],
                    state: store.state[i],
                    // §2: profitable outlinks of scheduled packets are
                    // measured from the node they are coming from.
                    profitable: topo.profitable(m.from, store.dst[i]),
                    queue: grid.arch().arrival_queue(m.travel),
                    pos: u32::MAX,
                },
                travel: m.travel,
            });
        }
        router.inqueue(t0, target, state, views, arrivals, accept);
    }
    // Queue degradation: clamp what a (degradation-unaware) router
    // accepted down to the reduced capacity. Written against the schedule
    // and the packet store (not the arrival views), so both policy paths
    // share one clamp: the exemption `dst == target` and the arrival slot
    // are exactly what the view-based arrivals used to carry.
    if let Some(f) = faults {
        let lost = f.degraded_slots(t0, target);
        if lost > 0 {
            let mut room = [usize::MAX; 5];
            for (s, r) in room.iter_mut().enumerate().take(grid.slots()) {
                let kind = grid.slot_kind(s);
                if let Some(cap) = grid.arch().capacity(kind) {
                    let eff = cap.saturating_sub(lost) as usize;
                    *r = eff.saturating_sub(grid.queue_len(ni, s));
                }
            }
            for (j, gi) in (start..end).enumerate() {
                let m = schedule[order[gi] as usize];
                if !accept[j] || store.dst[m.pkt.index()] == target {
                    continue;
                }
                let s = grid.arch().arrival_queue(m.travel).slot();
                if room[s] > 0 {
                    room[s] -= 1;
                } else {
                    accept[j] = false;
                }
            }
        }
    }
    for (j, gi) in (start..end).enumerate() {
        emit(order[gi], accept[j]);
    }
}

/// Groups the schedule by target node into `bufs.order` and records the
/// per-target group ranges in `bufs.groups` (ascending target id, stable
/// in schedule order within a group — provably the same permutation the
/// old stable sort-by-target produced). Shared by the sequential accept
/// phase and the tiled step's coordinator.
///
/// This is a counting group-by over the persistent `counts` arena instead
/// of a comparison sort: two linear passes over the schedule plus a sort
/// of the *distinct* targets only (at most one comparison-sorted element
/// per loaded node instead of one per move).
pub(crate) fn accept_prep(n: u32, bufs: &mut StepBufs) {
    let nn = (n as usize) * (n as usize);
    if bufs.counts.len() < nn {
        bufs.counts.resize(nn, 0);
    }
    let counts = &mut bufs.counts;
    let touched = &mut bufs.touched;
    touched.clear();
    for m in bufs.schedule.iter() {
        let t = (m.to.y * n + m.to.x) as usize;
        if counts[t] == 0 {
            touched.push(t as u32);
        }
        counts[t] += 1;
    }
    // Ascending-target order, two ways to get it: sort the distinct
    // targets, or — when most nodes were hit anyway — rescan the counts
    // arena in index order. Both produce the identical touched list, so
    // the choice is purely a cost model (dense steps are the common case
    // on loaded meshes and the scan is branch-predictable and sort-free).
    if touched.len() * 8 >= nn {
        touched.clear();
        for (t, &c) in counts.iter().enumerate().take(nn) {
            if c > 0 {
                touched.push(t as u32);
            }
        }
    } else {
        touched.sort_unstable();
    }
    bufs.groups.clear();
    let mut off = 0u32;
    for &t in touched.iter() {
        let c = counts[t as usize];
        bufs.groups.push((off, off + c));
        // Reuse the count cell as the group's placement cursor.
        counts[t as usize] = off;
        off += c;
    }
    bufs.order.clear();
    bufs.order.resize(bufs.schedule.len(), 0);
    for (i, m) in bufs.schedule.iter().enumerate() {
        let t = (m.to.y * n + m.to.x) as usize;
        bufs.order[counts[t] as usize] = i as u32;
        counts[t] += 1;
    }
    // Re-zero the dirtied cells so the arena is clean for the next step.
    for &t in touched.iter() {
        counts[t as usize] = 0;
    }
    bufs.accepted.clear();
    bufs.accepted.resize(bufs.schedule.len(), false);
}

/// §2 (c): group scheduled moves by target node (stable in schedule
/// order), let each unstalled target's inqueue policy accept or reject,
/// then clamp acceptance at degraded nodes down to the reduced capacity.
/// Deliveries never occupy a queue slot, so they are exempt from the
/// clamp; residents already over the reduced capacity are not evicted —
/// they drain naturally.
pub(crate) fn accept<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    let t0 = ctx.t0;
    accept_prep(ctx.grid.n(), ctx.bufs);
    let StepBufs {
        views,
        arrivals,
        arr_packed,
        accept,
        schedule,
        order,
        accepted,
        groups,
        ..
    } = &mut *ctx.bufs;
    for &(start, end) in groups.iter() {
        let target = schedule[order[start as usize] as usize].to;
        let ni = ctx.grid.node_index(target);
        accept_group(
            t0,
            ctx.topo,
            ctx.router,
            ctx.faults,
            ctx.store,
            ctx.grid,
            schedule,
            order,
            start as usize,
            end as usize,
            &mut ctx.node_state[ni],
            views,
            arrivals,
            arr_packed,
            accept,
            &mut |mi, a| accepted[mi as usize] = a,
        );
    }
}

/// §2 (d): accepted packets leave their source queues and either deliver
/// (arriving at their destination) or enter their target queue; lossy
/// transmissions count as a move and a hop but destroy the packet. Then
/// the active worklist is rebuilt: previously active nodes that still
/// hold packets (or have pending injections) stay active; transmission
/// already marked the targets.
pub(crate) fn transmit<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    for mi in 0..ctx.bufs.schedule.len() {
        if !ctx.bufs.accepted[mi] {
            continue;
        }
        let m = ctx.bufs.schedule[mi];
        let pi = m.pkt.index();
        let kind = ctx.store.queue_of[pi];
        debug_assert_eq!(ctx.store.loc[pi], Loc::At(m.from));
        ctx.grid.remove(
            m.from,
            kind,
            m.pkt,
            "scheduled packet missing from its queue",
        );
        ctx.progress.total_moves += 1;
        ctx.store.hops[pi] += 1;
        if ctx.store.dst[pi] == m.to {
            ctx.store.loc[pi] = Loc::Delivered;
            ctx.store.delivered_at[pi] = ctx.t0 + 1;
            ctx.progress.delivered += 1;
            ctx.events.delivered.push(m.pkt);
        } else {
            let akind = ctx.grid.arch().arrival_queue(m.travel);
            ctx.grid.push(m.to, akind, m.pkt);
            ctx.store.loc[pi] = Loc::At(m.to);
            ctx.store.queue_of[pi] = akind;
            ctx.store.mask[pi] = ctx.topo.profitable(m.to, ctx.store.dst[pi]).bits();
            let tni = ctx.grid.node_index(m.to);
            ctx.grid.mark_active(tni);
        }
    }
    // Lossy-link transmissions: the packet left its queue and traversed
    // the link (it counts as a move and a hop), but it never arrives
    // anywhere — it is destroyed. Its inqueue policy never saw it
    // offered, so no acceptance bookkeeping exists to undo.
    for li in 0..ctx.bufs.lost_moves.len() {
        let m = ctx.bufs.lost_moves[li];
        let pi = m.pkt.index();
        let kind = ctx.store.queue_of[pi];
        debug_assert_eq!(ctx.store.loc[pi], Loc::At(m.from));
        ctx.grid
            .remove(m.from, kind, m.pkt, "lost packet missing from its queue");
        ctx.progress.total_moves += 1;
        ctx.store.hops[pi] += 1;
        ctx.store.loc[pi] = Loc::Lost;
        ctx.progress.lost += 1;
        ctx.events.lost.push(m.pkt);
    }
    // Rebuild the active worklist from the route snapshot. The pending
    // lookup is hoisted behind an emptiness check: closed-system runs
    // (and any open-system step whose edge backlog is clear) skip the
    // per-node hash probe entirely.
    let has_pending = !ctx.grid.pending.is_empty();
    for idx in 0..ctx.bufs.snapshot.len() {
        let ni = ctx.bufs.snapshot[idx] as usize;
        if ctx.grid.node_load(ni) > 0
            || (has_pending && ctx.grid.pending.contains_key(&(ni as u32)))
        {
            ctx.grid.mark_active(ni);
        }
    }
}

/// One node's audit result: its total load and its largest bounded-queue
/// length.
pub(crate) struct NodeAudit {
    pub(crate) load: u32,
    pub(crate) max_bounded: u32,
}

/// Capacity validation plus occupancy measurement for one node. Shared by
/// the sequential audit phase and the tile workers; overflow panics here
/// are router implementation bugs, not runtime conditions.
pub(crate) fn audit_node<R: Router>(
    t0: u64,
    router: &R,
    validate: bool,
    grid: &NodeGrid,
    ni: usize,
) -> NodeAudit {
    // The load total comes straight off the arena's load index; only the
    // occupied slots (occupancy bitmask) are visited for the capacity
    // check and the bounded maximum. Unbounded (injection) queues count
    // toward node load but are skipped for max_queue tracking.
    let load = grid.node_load(ni);
    let mut max_bounded = 0u32;
    let lens = grid.queue_lens_of(ni);
    let mut o = grid.occ_mask(ni);
    while o != 0 {
        let slot = o.trailing_zeros() as usize;
        o &= o - 1;
        let len = lens[slot];
        let kind = grid.slot_kind(slot);
        if let Some(cap) = grid.arch().capacity(kind) {
            if validate {
                assert!(
                    len <= cap,
                    "{}: queue {kind:?} of node {:?} overflowed ({len} > {cap}) at step {t0}",
                    router.name(),
                    grid.coord_of(ni)
                );
            }
            max_bounded = max_bounded.max(len);
        }
    }
    debug_assert_eq!(
        load,
        lens.iter().sum::<u32>(),
        "occupancy index out of sync"
    );
    NodeAudit { load, max_bounded }
}

/// Capacity validation plus occupancy metrics over the active nodes.
pub(crate) fn audit<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    let t0 = ctx.t0;
    for idx in 0..ctx.grid.active_len() {
        let ni = ctx.grid.active_at(idx);
        let a = audit_node(t0, ctx.router, ctx.validate, ctx.grid, ni);
        ctx.progress.max_queue = ctx.progress.max_queue.max(a.max_bounded);
        ctx.progress.max_node_load = ctx.progress.max_node_load.max(a.load);
        ctx.grid.note_peak(ni, a.load as u16);
    }
}

/// §2 (e) for one loaded node: runs the router's end-of-step policy and
/// emits the resulting packet-state rewrites as `(packet, state)` pairs.
/// A packet resides at exactly one node, so the rewrites of distinct nodes
/// are disjoint and their application order is immaterial. Shared verbatim
/// by the sequential update phase and the tile workers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_node<T: Topology, R: Router>(
    t0: u64,
    topo: &T,
    router: &R,
    store: &PacketStore,
    grid: &NodeGrid,
    ni: usize,
    state: &mut R::NodeState,
    views: &mut Vec<FullView>,
    states: &mut Vec<u64>,
    emit: &mut impl FnMut(PacketId, u64),
) {
    if grid.node_load(ni) == 0 {
        return;
    }
    let node = grid.coord_of(ni);
    build_views(topo, store, grid, ni, node, views);
    states.clear();
    states.extend(views.iter().map(|v| v.state));
    router.end_of_step(t0, node, state, views, states);
    for (v, s) in views.iter().zip(states.iter()) {
        emit(v.id, *s);
    }
}

/// §2 (e): the end-of-step state update for every loaded active node.
/// Routers whose `end_of_step` is the inherited no-op declare so via
/// `uses_end_of_step`, and the whole pass — view building included — is
/// skipped: every write it would stage is an identity write.
pub(crate) fn update_state<T: Topology, R: Router>(ctx: &mut StepCtx<'_, '_, T, R>) {
    let StepBufs {
        views,
        states,
        state_writes,
        ..
    } = &mut *ctx.bufs;
    state_writes.clear();
    if !ctx.router.uses_end_of_step() {
        return;
    }
    for idx in 0..ctx.grid.active_len() {
        let ni = ctx.grid.active_at(idx);
        update_node(
            ctx.t0,
            ctx.topo,
            ctx.router,
            ctx.store,
            ctx.grid,
            ni,
            &mut ctx.node_state[ni],
            views,
            states,
            &mut |p, s| state_writes.push((p, s)),
        );
    }
    for &(p, s) in state_writes.iter() {
        ctx.store.state[p.index()] = s;
    }
}
