//! Differential battery for the bit-packed router fast path: a
//! mask-capable router's packed policies (`outqueue_packed` /
//! `inqueue_packed` over `PackedView` descriptors and per-slot occupancy
//! counts) must make **identical** decisions to its per-packet-view
//! policies. The oracle is the router itself behind a wrapper that reports
//! `mask_capable() == false`, forcing the engine down the view path — so
//! both sims run the same policy logic and differ only in the hot-path
//! representation. Any divergence in per-step event streams, packet
//! trajectories, reports, or diagnostics is a fast-path bug.
//!
//! Coverage axes: all three mask-capable routers × random workloads
//! (static partial permutations and dynamic Bernoulli) × every admission
//! policy × random fault plans (stalls, link faults, queue degradation —
//! exercising the engine-side acceptance clamp shared by both paths) ×
//! tile geometries and thread counts.

use mesh_routing::engine::{Arrival, DxView, QueueArch};
use mesh_routing::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Forces the per-packet-view slow path for any inner router by inheriting
/// the trait default `mask_capable() == false` (and `uses_end_of_step() ==
/// true`, so the oracle also runs the UpdateState pass the fast path skips
/// for no-op routers — proving the skip is an identity).
struct ViewOracle<R>(R);

impl<R: DxRouter> DxRouter for ViewOracle<R> {
    type NodeState = R::NodeState;

    fn name(&self) -> String {
        self.0.name()
    }

    fn queue_arch(&self) -> QueueArch {
        self.0.queue_arch()
    }

    fn is_minimal(&self) -> bool {
        self.0.is_minimal()
    }

    fn outqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        pkts: &[DxView],
        out: &mut [Option<usize>; 4],
    ) {
        self.0.outqueue(step, node, state, pkts, out);
    }

    fn inqueue(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[DxView],
        arrivals: &[Arrival<DxView>],
        accept: &mut [bool],
    ) {
        self.0
            .inqueue(step, node, state, residents, arrivals, accept);
    }

    fn end_of_step(
        &self,
        step: u64,
        node: Coord,
        state: &mut Self::NodeState,
        residents: &[DxView],
        states: &mut [u64],
    ) {
        self.0.end_of_step(step, node, state, residents, states);
    }
}

/// An arbitrary partial permutation on a side-`n` grid (same construction
/// as `tests/properties.rs`).
fn partial_permutation(n: u32) -> impl Strategy<Value = RoutingProblem> {
    let cells = (n * n) as usize;
    (
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
    )
        .prop_map(move |(mut srcs, mut dsts)| {
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            let m = srcs.len().min(dsts.len());
            let pairs = srcs[..m]
                .iter()
                .zip(&dsts[..m])
                .map(|(&s, &d)| (Coord::new(s % n, s / n), Coord::new(d % n, d / n)));
            RoutingProblem::from_pairs(n, "prop", pairs)
        })
}

/// Static partial permutations or dynamic Bernoulli arrivals.
fn workload(n: u32) -> impl Strategy<Value = RoutingProblem> {
    (0u32..2, partial_permutation(n), (1u64..=50, 0u64..5_000)).prop_map(
        move |(which, pp, (rate_permille, seed))| {
            if which == 0 {
                pp
            } else {
                workloads::dynamic_bernoulli(n, rate_permille as f64 / 1000.0, 4 * n as u64, seed)
            }
        },
    )
}

/// All four admission policies, parameters included.
fn admission() -> impl Strategy<Value = AdmissionPolicy> {
    (0u32..4, 0u32..4, 1u64..64).prop_map(|(which, max_deferred, ttl)| match which {
        0 => AdmissionPolicy::DeferIndefinitely,
        1 => AdmissionPolicy::RejectNew,
        2 => AdmissionPolicy::DropOldestDeferred { max_deferred },
        _ => AdmissionPolicy::DeadlineExpiry { ttl },
    })
}

/// Tile geometry × worker threads (sequential included).
fn tile_config(n: u32) -> impl Strategy<Value = (Option<(u32, u32)>, usize)> {
    (0u32..4, 1u32..=n, 1u32..=n, 0usize..4).prop_map(move |(which, tx, ty, ti)| {
        let geometry = match which {
            0 => None,
            1 => Some((1, 1)),
            2 => Some((n, n)),
            _ => Some((tx, ty)),
        };
        (geometry, [1usize, 2, 4, 8][ti])
    })
}

/// Steps the fast (packed) and oracle (view) sims in lockstep, checking
/// after every step that the observable state is identical.
fn assert_lockstep_identical<T: Topology, RA: Router, RB: Router>(
    fast: &mut Sim<'_, T, RA>,
    oracle: &mut Sim<'_, T, RB>,
    max_steps: u64,
) -> Result<(), TestCaseError> {
    for step in 0..max_steps {
        let a = fast.step();
        let b = oracle.step();
        prop_assert!(a == b, "done flags diverged at step {}", step);
        prop_assert!(
            fast.last_step_deliveries() == oracle.last_step_deliveries(),
            "delivery stream diverged at step {}",
            step
        );
        prop_assert!(
            fast.last_step_losses() == oracle.last_step_losses(),
            "loss stream diverged at step {}",
            step
        );
        prop_assert!(
            fast.packet_snapshot() == oracle.packet_snapshot(),
            "packet configuration diverged at step {}",
            step
        );
        if a {
            break;
        }
    }
    prop_assert_eq!(
        serde_json::to_string(&fast.report()).unwrap(),
        serde_json::to_string(&oracle.report()).unwrap()
    );
    prop_assert_eq!(fast.diagnostics(), oracle.diagnostics());
    Ok(())
}

/// Builds the fast/oracle pair for a fault-free problem under an admission
/// policy and tile configuration, and runs the lockstep comparison.
fn check_fault_free<R: DxRouter>(
    pb: &RoutingProblem,
    mk: impl Fn() -> R,
    adm: AdmissionPolicy,
    tiles: Option<(u32, u32)>,
    threads: usize,
) -> Result<(), TestCaseError> {
    let topo = Mesh::new(pb.n);
    let config = SimConfig {
        admission: adm,
        tile_threads: threads,
        tiles,
        ..SimConfig::default()
    };
    let mut fast = Sim::with_config(&topo, Dx::new(mk()), pb, config);
    let mut oracle = Sim::with_config(&topo, Dx::new(ViewOracle(mk())), pb, config);
    assert_lockstep_identical(&mut fast, &mut oracle, 3_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: every mask-capable router is decision-identical through
    /// its packed and view policies, for arbitrary workloads, admission
    /// policies, tile geometries, and thread counts.
    #[test]
    fn packed_path_is_bit_identical_fault_free(
        pb in workload(16),
        adm in admission(),
        tc in tile_config(16),
        k in 1u32..4,
        router in 0usize..3,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        match router {
            0 => check_fault_free(&pb, || DimOrder::new(k), adm, tiles, threads)?,
            1 => check_fault_free(&pb, || Theorem15::new(k), adm, tiles, threads)?,
            _ => check_fault_free(&pb, || WestFirst::new(k), adm, tiles, threads)?,
        }
    }

    /// Property 2: equivalence under arbitrary fault plans with the
    /// watchdog armed. The routers here are *unwrapped* (no FaultAware),
    /// so the engine's own fault machinery carries the whole burden: the
    /// packed path must agree with the view path through stalled-node
    /// gates and the engine-side degradation clamp (which now reads the
    /// schedule and packet store instead of the arrival views). The whole
    /// run outcome must match, not just the happy path.
    ///
    /// Only the conservative-acceptance routers run unwrapped: Theorem15's
    /// always-accept vertical queues rely on guaranteed ejection, which a
    /// link fault breaks — the queue overflows (identically in both paths)
    /// and the capacity audit panics. Masking that is FaultAware's job;
    /// the wrapped combination is property 3.
    #[test]
    fn packed_path_is_bit_identical_under_faults(
        pb in partial_permutation(12),
        adm in admission(),
        tc in tile_config(12),
        k in 1u32..4,
        rate_permille in 0u64..=200,
        fault_seed in 0u64..10_000,
        router in 0usize..2,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        let n = 12u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = Arc::new(FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile());
        let config = SimConfig {
            watchdog: Some(8 * n as u64),
            admission: adm,
            tile_threads: threads,
            tiles,
            ..SimConfig::default()
        };
        macro_rules! pair_check {
            ($mk:expr) => {{
                let mk = $mk;
                let mut fast = Sim::with_faults(
                    &topo, Dx::new(mk()), &pb, config, faults.as_ref().clone(),
                );
                let mut oracle = Sim::with_faults(
                    &topo, Dx::new(ViewOracle(mk())), &pb, config, faults.as_ref().clone(),
                );
                let res_fast = fast.run(20_000);
                let res_oracle = oracle.run(20_000);
                prop_assert!(
                    res_fast == res_oracle,
                    "run outcomes diverged: {:?} vs {:?}",
                    res_fast,
                    res_oracle
                );
                prop_assert_eq!(
                    serde_json::to_string(&fast.report()).unwrap(),
                    serde_json::to_string(&oracle.report()).unwrap()
                );
                prop_assert_eq!(fast.packet_snapshot(), oracle.packet_snapshot());
                prop_assert_eq!(fast.diagnostics(), oracle.diagnostics());
            }};
        }
        match router {
            0 => pair_check!(|| DimOrder::new(k)),
            _ => pair_check!(|| WestFirst::new(k)),
        }
    }

    /// Property 3: the empty-fault-table FaultAware wrapper forwards the
    /// fast path (it is a pure pass-through then), and a *non-empty* table
    /// switches it off — either way the wrapped run matches the oracle
    /// wrapped the same way.
    #[test]
    fn fault_aware_wrapper_forwards_packed_path_soundly(
        pb in partial_permutation(12),
        k in 1u32..4,
        rate_permille in 0u64..=150,
        fault_seed in 0u64..10_000,
    ) {
        prop_assume!(!pb.is_empty());
        let n = 12u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = Arc::new(FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile());
        let config = SimConfig {
            watchdog: Some(8 * n as u64),
            ..SimConfig::default()
        };
        let mut fast = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(k)), Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let mut oracle = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(ViewOracle(Theorem15::new(k))), Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let res_fast = fast.run(20_000);
        let res_oracle = oracle.run(20_000);
        prop_assert!(
            res_fast == res_oracle,
            "run outcomes diverged: {:?} vs {:?}",
            res_fast,
            res_oracle
        );
        prop_assert_eq!(fast.packet_snapshot(), oracle.packet_snapshot());
        prop_assert_eq!(fast.diagnostics(), oracle.diagnostics());
    }
}
