//! Per-theorem bound tests: each theorem of the paper, certified on concrete
//! instances. These are the "does the reproduction reproduce" tests; the
//! benchmark harness (`mesh-bench`) regenerates the full tables.

use mesh_routing::adversary::dimorder::DimOrderConstruction;
use mesh_routing::adversary::farthest::FarthestFirstConstruction;
use mesh_routing::prelude::*;
use mesh_routing::Section6Router;

/// Theorem 13/14: the §3 construction forces ≥ ⌊l⌋·dn steps on any
/// destination-exchangeable minimal adaptive router, and the bound grows as
/// Ω(n²/k²).
#[test]
fn theorem_14_lower_bound_certified() {
    for (n, k) in [(216u32, 1u32), (432, 1)] {
        let params = GeneralParams::new(n, k).unwrap();
        let cons = GeneralConstruction::new(params);
        let topo = Mesh::new(n);
        for router in ["dim", "alt"] {
            let outcome = match router {
                "dim" => cons.run(&topo, mesh_routing::routers::dim_order(k), false),
                _ => cons.run(&topo, mesh_routing::routers::alt_adaptive(k), false),
            };
            assert!(outcome.undelivered_at_bound > 0, "{router} n={n} k={k}");
        }
        if n >= 432 {
            // The Ω(n²/k²) bound overtakes the 2n−2 diameter bound once n
            // is comfortably above the 24(k+2)² threshold.
            assert!(
                params.bound_steps() > (2 * n - 2) as u64,
                "bound {} should exceed the diameter at n={n}",
                params.bound_steps()
            );
        }
    }
}

/// The constructed instance is a genuine partial permutation.
#[test]
fn constructed_instance_is_a_partial_permutation() {
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1), false);
    assert!(outcome.constructed.is_partial_permutation());
    assert_eq!(outcome.constructed.len() as u64, params.total_packets());
}

/// Theorem 14's growth: at fixed k the bound grows ~n²; at fixed n it falls
/// ~1/k².
#[test]
fn theorem_14_growth_shape() {
    let b216 = GeneralParams::new(216, 1).unwrap().bound_steps() as f64;
    let b432 = GeneralParams::new(432, 1).unwrap().bound_steps() as f64;
    let b864 = GeneralParams::new(864, 1).unwrap().bound_steps() as f64;
    assert!(
        b432 / b216 > 2.5,
        "doubling n must much more than double the bound"
    );
    assert!(b864 / b432 > 2.5);
    let bk1 = GeneralParams::new(864, 1).unwrap().bound_steps() as f64;
    let bk2 = GeneralParams::new(864, 2).unwrap().bound_steps() as f64;
    assert!(bk1 / bk2 > 1.8, "k=1 bound must dwarf k=2 bound");
}

/// §5 dimension-order bound: Ω(n²/k), certified by replay.
#[test]
fn dimension_order_lower_bound_certified() {
    let params = DimOrderParams::new(216, 1).unwrap();
    let cons = DimOrderConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1));
    let report = verify_lower_bound(&topo, mesh_routing::routers::dim_order(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
    // The Ω(n²/k) bound exceeds the general Ω(n²/k²) one at the same n, k=1
    // by construction of the stronger geometry.
    assert!(params.bound_steps() >= GeneralParams::new(216, 1).unwrap().bound_steps());
}

/// §5 farthest-first bound — for an algorithm outside the
/// destination-exchangeable class.
#[test]
fn farthest_first_lower_bound_certified() {
    let params = DimOrderParams::farthest_first(216, 1).unwrap();
    let cons = FarthestFirstConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, FarthestFirst::new(1));
    let report = verify_lower_bound(&topo, FarthestFirst::new(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
}

/// The §3 adversary applies to *any* destination-exchangeable minimal
/// adaptive algorithm — including the turn-model family cited in §2
/// (west-first, standing in for Chien–Kim planar-adaptive).
#[test]
fn theorem_14_applies_to_west_first() {
    use mesh_routing::routers::WestFirst;
    let params = GeneralParams::new(216, 1).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(216);
    let outcome = cons.run(&topo, Dx::new(WestFirst::new(1)), true);
    let rep = verify_lower_bound(&topo, Dx::new(WestFirst::new(1)), &outcome, None);
    assert!(rep.undelivered_at_bound > 0);
    assert!(rep.replay_matches_construction);
}

/// §5 torus extension: the construction embedded in an (n/2)×(n/2) corner of
/// the torus still certifies the bound.
#[test]
fn torus_lower_bound_certified() {
    let m = 216; // submesh side
    let n = 2 * m;
    let params = GeneralParams::new(m, 1).unwrap();
    let cons = GeneralConstruction::embedded(params, n);
    let topo = Torus::new(n);
    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(1), false);
    assert!(outcome.undelivered_at_bound > 0);
    let report = verify_lower_bound(&topo, mesh_routing::routers::dim_order(1), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
}

/// §5 h-h extension (h ≤ k static placement).
#[test]
fn hh_lower_bound_certified() {
    let params = GeneralParams::hh(600, 4, 2).unwrap();
    let cons = GeneralConstruction::new(params);
    let topo = Mesh::new(600);
    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(4), false);
    assert!(outcome.constructed.is_hh(2));
    assert!(outcome.undelivered_at_bound > 0);
    let report = verify_lower_bound(&topo, mesh_routing::routers::dim_order(4), &outcome, None);
    assert!(report.undelivered_at_bound > 0);
    assert!(report.replay_matches_construction);
}

/// Theorem 15: O(n²/k + n) with four inlink queues of size k, on the §5
/// hard instance and on stress permutations.
#[test]
fn theorem_15_upper_bound() {
    const C: u64 = 8;
    for (n, k) in [(216u32, 1u32), (216, 2), (216, 4)] {
        let bound = C * ((n as u64 * n as u64) / k as u64 + n as u64);
        // Hard instance from the dimension-order adversary. The Theorem 15
        // router keeps four inlink queues of k plus an injection slot, so
        // the §5 "Other Queue Types" remark applies: the adversary's
        // partner-counting needs constants for an effective central queue
        // of 4k + 1.
        let params = DimOrderParams::new(n, 4 * k + 1).unwrap();
        let cons = DimOrderConstruction::new(params);
        let topo = Mesh::new(n);
        let outcome = cons.run(&topo, mesh_routing::routers::theorem15(k));
        let report = verify_lower_bound(
            &topo,
            mesh_routing::routers::theorem15(k),
            &outcome,
            Some(20_000_000),
        );
        let steps = report.completion_steps.expect("theorem15 always completes");
        assert!(steps >= params.bound_steps(), "lower bound must hold");
        assert!(steps <= bound, "n={n} k={k}: {steps} > {bound}");
        // Stress permutation.
        let out = mesh_routing::route_with_cap(
            Algorithm::Theorem15 { k },
            &workloads::transpose(n),
            bound,
        );
        assert!(out.completed && out.steps <= bound);
    }
}

/// Theorem 34: the §6 router delivers every permutation in ≤ 972n scheduled
/// steps (564n improved) with ≤ 834 packets per node, on minimal paths.
#[test]
fn theorem_34_upper_bound() {
    for n in [27u32, 81, 243] {
        for pb in [
            workloads::random_permutation(n, 17),
            workloads::transpose(n),
        ] {
            let r = Section6Router::new().route(&pb);
            assert!(
                r.scheduled_steps <= 972 * n as u64,
                "n={n}: {}",
                r.scheduled_steps
            );
            assert!(r.max_node_load <= 834);
            assert_eq!(r.total_moves, pb.total_work());
            let ri = Section6Router::improved().route(&pb);
            assert!(ri.scheduled_steps <= 564 * n as u64);
        }
    }
}

/// §6 is O(n): scheduled steps per n stay bounded as n grows (they approach
/// the 972 constant from below rather than growing).
#[test]
fn section6_linear_scaling() {
    let r81 = Section6Router::new().route(&workloads::random_permutation(81, 3));
    let r243 = Section6Router::new().route(&workloads::random_permutation(243, 3));
    let per_n_81 = r81.steps_per_n();
    let per_n_243 = r243.steps_per_n();
    assert!(per_n_81 < 972.0 && per_n_243 < 972.0);
    // Growth in steps is ~3x for 3x n (not ~9x as for the Ω(n²/k²) class).
    let ratio = r243.scheduled_steps as f64 / r81.scheduled_steps as f64;
    assert!(ratio < 4.5, "scheduled steps grew superlinearly: {ratio}");
}

/// §1.1 context: the greedy 2n−2 router's queues must grow ~linearly on the
/// column funnel, while random destinations keep queues tiny — the tension
/// motivating the whole paper.
#[test]
fn greedy_queue_dichotomy() {
    let n = 48;
    let topo = Mesh::new(n);
    let mut sim = Sim::new(
        &topo,
        FarthestFirst::unbounded(n),
        &workloads::column_funnel(n),
    );
    sim.run(10_000).unwrap();
    let worst = sim.report().max_queue;
    assert!(worst >= n / 4, "funnel queue {worst} too small");

    let mut sim = Sim::new(
        &topo,
        FarthestFirst::unbounded(n),
        &workloads::random_destinations(n, 2),
    );
    sim.run(10_000).unwrap();
    let avg = sim.report().max_queue;
    assert!(
        avg <= 8,
        "random-destination queues should stay tiny, got {avg}"
    );
}
