//! Golden-run regression fixtures: the engine's observable behavior is
//! frozen across refactors.
//!
//! Four scenarios on a 16×16 mesh — a partial permutation, a transpose, one
//! faulty run, and one reliable-transport run — each recorded as a JSON
//! fixture holding the final [`SimReport`] plus the *complete* per-step
//! delivery/loss event streams. The test regenerates each scenario and
//! asserts the serialized document is **byte-identical** to the committed
//! fixture, so any refactor that perturbs scheduling order, fault
//! enforcement, acceptance, or protocol timing fails loudly instead of
//! silently shifting recorded experiment tables.
//!
//! Each scenario is also **replayed under tile-sharded execution**
//! (`tile_threads` ∈ {2, 4, 8} and an explicit 4×4 tile geometry) and must
//! reproduce the committed fixture byte-for-byte: parallel execution is an
//! execution strategy, never a semantics change.
//!
//! Regenerate the fixtures (only when a behavior change is *intended*):
//!
//! ```sh
//! GOLDEN_RECORD=1 cargo test -p mesh-routing --test golden_run
//! ```

use mesh_routing::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// One step's protocol-visible events, by packet id.
#[derive(Serialize, Deserialize, PartialEq)]
struct GoldenStep {
    step: u64,
    delivered: Vec<u32>,
    lost: Vec<u32>,
}

/// The frozen record of one scenario.
#[derive(Serialize, Deserialize)]
struct GoldenDoc {
    scenario: String,
    /// `completed`, an error kind (`deadlock`/`livelock`/`step-cap`), or
    /// `capped` for manually-stepped scenarios that hit the step budget.
    outcome: String,
    report: SimReport,
    events: Vec<GoldenStep>,
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(format!("golden_{name}.json"))
}

fn check(doc: GoldenDoc) {
    let path = fixture_path(&doc.scenario);
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize golden doc") + "\n";
    if std::env::var_os("GOLDEN_RECORD").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); record with GOLDEN_RECORD=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, recorded,
        "scenario '{}' diverged from its golden fixture — the engine's \
         observable behavior changed",
        doc.scenario
    );
}

/// The tiled execution configs every scenario must replay under,
/// byte-identically: band tilings at 2/4/8 worker threads plus an explicit
/// square geometry.
fn tiled_configs() -> [SimConfig; 4] {
    let base = SimConfig::default();
    [
        SimConfig {
            tile_threads: 2,
            ..base
        },
        SimConfig {
            tile_threads: 4,
            ..base
        },
        SimConfig {
            tile_threads: 8,
            ..base
        },
        SimConfig {
            tile_threads: 4,
            tiles: Some((4, 4)),
            ..base
        },
    ]
}

/// Runs `build` sequentially to check (or record) the fixture, then
/// replays it under every tiled config, requiring the same bytes the
/// fixture holds.
fn check_sequential_and_tiled(build: impl Fn(SimConfig) -> GoldenDoc) {
    check(build(SimConfig::default()));
    for config in tiled_configs() {
        let doc = build(config);
        let path = fixture_path(&doc.scenario);
        let rendered = serde_json::to_string_pretty(&doc).expect("serialize golden doc") + "\n";
        let recorded = std::fs::read_to_string(&path).expect("fixture exists after check()");
        assert_eq!(
            rendered, recorded,
            "scenario '{}' under tile_threads={} tiles={:?} diverged from \
             the sequential fixture — tiled execution is not bit-identical",
            doc.scenario, config.tile_threads, config.tiles
        );
    }
}

fn ids(pids: &[PacketId]) -> Vec<u32> {
    pids.iter().map(|p| p.0).collect()
}

/// The frozen record of one steady-state (open-system) scenario: the
/// windowed measurement frames plus the final report, which carries the
/// admission-control shed/expired totals.
#[derive(Serialize, Deserialize)]
struct GoldenSteadyDoc {
    scenario: String,
    steady: SteadyReport,
    report: SimReport,
}

/// An overloaded open-system soak on 16×16: Bernoulli injection past the
/// saturation point under deadline expiry, measured in four windows. The
/// frozen record pins the whole overload layer — admission accounting,
/// window framing, latency percentiles — and must replay byte-identically
/// under every tiled config. Dim-order's bounded central queue makes the
/// injection edge back-pressure (Theorem 15's per-inlink model has an
/// unbounded injection queue, which admission control never touches).
#[test]
fn golden_steady16() {
    let schedule = SteadyConfig {
        warmup: 64,
        window: 64,
        windows: 4,
    };
    let build = |config: SimConfig| {
        let n = 16;
        let topo = Mesh::new(n);
        let pb = workloads::open_bernoulli(n, 0.35, schedule.horizon(), 2024);
        let config = SimConfig {
            admission: AdmissionPolicy::DeadlineExpiry { ttl: 48 },
            watchdog: Some(256),
            ..config
        };
        let mut sim = Sim::with_config(&topo, Dx::new(DimOrder::new(4)), &pb, config);
        let steady = sim
            .run_steady(schedule)
            .expect("an overloaded-but-shedding soak must stay live");
        GoldenSteadyDoc {
            scenario: "steady16".into(),
            steady,
            report: sim.report(),
        }
    };

    let doc = build(SimConfig::default());
    assert!(doc.report.expired > 0, "0.35 > saturation must expire");
    let path = fixture_path(&doc.scenario);
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize golden doc") + "\n";
    if std::env::var_os("GOLDEN_RECORD").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, &rendered).expect("write fixture");
    } else {
        let recorded = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); record with GOLDEN_RECORD=1",
                path.display()
            )
        });
        assert_eq!(
            rendered, recorded,
            "scenario 'steady16' diverged from its golden fixture — the \
             overload layer's observable behavior changed"
        );
    }
    for config in tiled_configs() {
        let tiled = build(config);
        let replay = serde_json::to_string_pretty(&tiled).expect("serialize golden doc") + "\n";
        let recorded = std::fs::read_to_string(&path).expect("fixture exists after check");
        assert_eq!(
            replay, recorded,
            "scenario 'steady16' under tile_threads={} tiles={:?} diverged — \
             tiled execution is not bit-identical",
            config.tile_threads, config.tiles
        );
    }
}

/// Steps `sim` manually up to `cap` steps, recording every step that
/// delivered or destroyed a packet.
fn step_and_record<T: Topology, R: Router>(
    sim: &mut Sim<'_, T, R>,
    cap: u64,
) -> (String, Vec<GoldenStep>) {
    let mut events = Vec::new();
    let mut done = sim.done();
    while !done && sim.steps() < cap {
        done = sim.step();
        if !sim.last_step_deliveries().is_empty() || !sim.last_step_losses().is_empty() {
            events.push(GoldenStep {
                step: sim.steps(),
                delivered: ids(sim.last_step_deliveries()),
                lost: ids(sim.last_step_losses()),
            });
        }
    }
    let outcome = if done { "completed" } else { "capped" };
    (outcome.to_string(), events)
}

#[test]
fn golden_partial_permutation() {
    check_sequential_and_tiled(|config| {
        let topo = Mesh::new(16);
        let pb = workloads::random_partial_permutation(16, 0.5, 2024);
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
        let (outcome, events) = step_and_record(&mut sim, 5_000);
        GoldenDoc {
            scenario: "partial_perm".into(),
            outcome,
            report: sim.report(),
            events,
        }
    });
}

#[test]
fn golden_transpose() {
    check_sequential_and_tiled(|config| {
        let topo = Mesh::new(16);
        let pb = workloads::transpose(16);
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
        let (outcome, events) = step_and_record(&mut sim, 5_000);
        GoldenDoc {
            scenario: "transpose".into(),
            outcome,
            report: sim.report(),
            events,
        }
    });
}

/// A dense workload on a larger mesh: a full random permutation on 64×64,
/// so traffic crosses every tile boundary of every geometry the replays
/// use.
#[test]
fn golden_dense64() {
    check_sequential_and_tiled(|config| {
        let n = 64;
        let topo = Mesh::new(n);
        let pb = workloads::random_permutation(n, 2024);
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
        let (outcome, events) = step_and_record(&mut sim, 20_000);
        GoldenDoc {
            scenario: "dense64".into(),
            outcome,
            report: sim.report(),
            events,
        }
    });
}

/// The faulty scenario mirrors a chaos-soak cell: seeded random faults, a
/// fault-aware router, manual stepping so the event stream (not just the
/// verdict) is part of the frozen record.
#[test]
fn golden_faulty() {
    check_sequential_and_tiled(|config| {
        let n = 16;
        let topo = Mesh::new(n);
        let pb = workloads::random_partial_permutation(n, 0.5, 2024);
        let faults = Arc::new(FaultPlan::random(n, 0.15, 8 * n as u64, 4045).compile());
        let config = SimConfig {
            watchdog: Some(8 * n as u64),
            ..config
        };
        let mut sim = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(DimOrder::new(4)), Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let (outcome, events) = step_and_record(&mut sim, 5_000);
        GoldenDoc {
            scenario: "faulty".into(),
            outcome,
            report: sim.report(),
            events,
        }
    });
}

/// A [`ProtocolHook`] adapter recording each step's events before
/// forwarding them to the real transport.
struct Recording<'a, P> {
    inner: &'a mut P,
    events: Vec<GoldenStep>,
}

impl<P: ProtocolHook> ProtocolHook for Recording<'_, P> {
    fn on_step<T: Topology, R: Router>(
        &mut self,
        sim: &mut Sim<'_, T, R>,
        events: &StepEvents,
    ) -> ProtocolControl {
        if !events.delivered.is_empty() || !events.lost.is_empty() {
            self.events.push(GoldenStep {
                step: events.step,
                delivered: ids(&events.delivered),
                lost: ids(&events.lost),
            });
        }
        self.inner.on_step(sim, events)
    }
}

/// The reliable scenario mirrors a `reliable`-experiment cell: dynamic
/// injection under lossy outages, ACK + retransmission recovering every
/// payload, driven through `run_with_protocol`.
#[test]
fn golden_reliable() {
    check_sequential_and_tiled(|config| {
        let n = 16;
        let topo = Mesh::new(n);
        let pb = workloads::dynamic_bernoulli(n, 0.02, 4 * n as u64, 2024);
        let faults = Arc::new(FaultPlan::random_outages(n, 0.12, 8 * n as u64, 40).compile());
        let config = SimConfig {
            watchdog: Some(1024),
            ..config
        };
        let mut sim = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let mut transport = Transport::new(&pb, BackoffPolicy::exponential(64, 512, 16), 7);
        let mut recorder = Recording {
            inner: &mut transport,
            events: Vec::new(),
        };
        let res = sim.run_with_protocol(200_000, &mut recorder);
        let outcome = match &res {
            Ok(_) => "completed".to_string(),
            Err(err) => err.kind().to_string(),
        };
        let events = recorder.events;
        GoldenDoc {
            scenario: "reliable".into(),
            outcome,
            report: sim.report(),
            events,
        }
    });
}
