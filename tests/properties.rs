//! Property-based tests (proptest) on the core invariants:
//! delivery + minimality on arbitrary problems, exchange-invariance of
//! destination-exchangeable routers (Lemma 10), tiling coverage (Lemma 19),
//! quadrant/geometry algebra, and the open-system overload seam
//! (per-step packet conservation and queue caps under any offered load,
//! admission policy, and tile geometry; overload watchdog liveness).

use mesh_routing::prelude::*;
use mesh_routing::Section6Router;
use mesh_topo::TilingSet;
use proptest::prelude::*;

/// An arbitrary partial permutation on a side-`n` grid: a random subset of
/// sources matched to a random subset of destinations.
fn partial_permutation(n: u32) -> impl Strategy<Value = RoutingProblem> {
    let cells = (n * n) as usize;
    (
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
    )
        .prop_map(move |(mut srcs, mut dsts)| {
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            let m = srcs.len().min(dsts.len());
            let pairs = srcs[..m]
                .iter()
                .zip(&dsts[..m])
                .map(|(&s, &d)| (Coord::new(s % n, s / n), Coord::new(d % n, d / n)));
            RoutingProblem::from_pairs(n, "prop", pairs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn theorem15_delivers_and_stays_minimal(pb in partial_permutation(16), k in 1u32..4) {
        let topo = Mesh::new(16);
        let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(k)), &pb);
        let steps = sim.run(500_000).expect("theorem15 always delivers");
        let r = sim.report();
        prop_assert!(r.completed);
        prop_assert_eq!(r.total_moves, pb.total_work());
        prop_assert!(r.max_queue <= k);
        prop_assert!(steps >= pb.diameter_bound() as u64);
    }

    #[test]
    fn greedy_unbounded_meets_2n_minus_2_on_permutations(seed in 0u64..1000) {
        let n = 12;
        let pb = workloads::random_permutation(n, seed);
        let topo = Mesh::new(n);
        let mut sim = Sim::new(&topo, FarthestFirst::unbounded(n), &pb);
        let steps = sim.run(10_000).unwrap();
        prop_assert!(steps <= (2 * n - 2) as u64, "greedy took {} steps", steps);
    }

    #[test]
    fn section6_delivers_arbitrary_partial_permutations(pb in partial_permutation(27)) {
        let r = Section6Router::new().route(&pb);
        prop_assert_eq!(r.delivered, pb.len());
        prop_assert!(r.max_node_load <= 834);
        prop_assert!(r.scheduled_steps <= 972 * 27);
    }

    #[test]
    fn section6_and_theorem15_do_identical_minimal_work(pb in partial_permutation(27)) {
        // Both are minimal routers: on any problem they must perform exactly
        // the same number of link traversals (the total work), despite
        // completely different strategies.
        let s6 = Section6Router::new().route(&pb);
        let topo = Mesh::new(27);
        let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
        sim.run(1_000_000).unwrap();
        prop_assert_eq!(s6.total_moves, sim.report().total_moves);
        prop_assert_eq!(s6.total_moves, pb.total_work());
    }

    #[test]
    fn lemma_10_one_step_exchange_equivalence(seed in 0u64..500, k in 2u32..5, steps in 1u64..4) {
        // Lemma 10 (literally): if x and x' both have destinations strictly
        // northeast of both packets' positions — so the exchange does not
        // change any profitable set — then δ(S_{x,x'}, 1) equals δ(S, 1)
        // with x and x' exchanged. We iterate it for a few steps while the
        // precondition provably still holds (margin ≥ steps in every
        // coordinate gap).
        let n = 12;
        let pb = workloads::random_permutation(n, seed);
        let topo = Mesh::new(n);

        let margin = steps as u32 + 1;
        let mut pair = None;
        'outer: for (i, a) in pb.packets.iter().enumerate() {
            if !(a.dst.x > a.src.x + margin && a.dst.y > a.src.y + margin) { continue; }
            for b in pb.packets.iter().skip(i + 1) {
                if b.dst.x > b.src.x + margin && b.dst.y > b.src.y + margin
                    && b.dst.x > a.src.x + margin && b.dst.y > a.src.y + margin
                    && a.dst.x > b.src.x + margin && a.dst.y > b.src.y + margin {
                    pair = Some((a.id, b.id));
                    break 'outer;
                }
            }
        }
        prop_assume!(pair.is_some());
        let (pa, pb_id) = pair.unwrap();

        let mut plain = Sim::new(&topo, Dx::new(DimOrder::new(k)), &pb);
        let mut adv = Sim::new(&topo, Dx::new(DimOrder::new(k)), &pb);
        let mut fired = false;
        let mut hook = |ctx: &mut mesh_routing::engine::HookCtx<'_>| {
            if !fired {
                ctx.exchange(pa, pb_id);
                fired = true;
            }
        };
        for s in 0..steps {
            plain.step();
            if s == 0 {
                adv.step_with_hook(&mut hook);
            } else {
                adv.step();
            }
        }

        // δ(S_{x,x'}, t) must be δ(S, t) with the destinations swapped back.
        let sa = plain.packet_snapshot();
        let mut sb = adv.packet_snapshot();
        let da = sb[pa.index()].1;
        sb[pa.index()].1 = sb[pb_id.index()].1;
        sb[pb_id.index()].1 = da;
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn lemma_19_tiling_coverage(x in 0u32..60, y in 0u32..60, dx in -9i64..=9, dy in -9i64..=9) {
        // Tile side 27, third = 9: any pair within 9 in both dims shares a
        // tile of one of the three tilings.
        let set = TilingSet::new(27);
        let bx = x as i64 + dx;
        let by = y as i64 + dy;
        prop_assume!(bx >= 0 && by >= 0);
        let a = Coord::new(x, y);
        let b = Coord::new(bx as u32, by as u32);
        prop_assert!(set.common_tile(a, b).is_some());
    }

    #[test]
    fn quadrant_partition_is_total(fx in 0u32..30, fy in 0u32..30, tx in 0u32..30, ty in 0u32..30) {
        let from = Coord::new(fx, fy);
        let to = Coord::new(tx, ty);
        match Quadrant::of(from, to) {
            None => prop_assert_eq!(from, to),
            Some(q) => {
                let (sx, sy) = q.signs();
                let dx = to.x as i64 - from.x as i64;
                let dy = to.y as i64 - from.y as i64;
                prop_assert!(dx * sx >= 0 && dy * sy >= 0, "{:?} mismatch", q);
            }
        }
    }

    #[test]
    fn profitable_outlinks_always_decrease_distance(
        n in 2u32..20, fx in 0u32..19, fy in 0u32..19, tx in 0u32..19, ty in 0u32..19
    ) {
        prop_assume!(fx < n && fy < n && tx < n && ty < n);
        let from = Coord::new(fx, fy);
        let to = Coord::new(tx, ty);
        for topo_kind in 0..2 {
            let (profitable, dist, check): (DirSet, u32, Box<dyn Fn(Coord) -> u32>) = if topo_kind == 0 {
                let m = Mesh::new(n);
                (m.profitable(from, to), m.distance(from, to), Box::new(move |c| Mesh::new(n).distance(c, to)))
            } else {
                let t = Torus::new(n);
                (t.profitable(from, to), t.distance(from, to), Box::new(move |c| Torus::new(n).distance(c, to)))
            };
            prop_assert_eq!(profitable.is_empty(), from == to);
            for d in profitable.iter() {
                let nb = if topo_kind == 0 {
                    Mesh::new(n).neighbor(from, d)
                } else {
                    Torus::new(n).neighbor(from, d)
                };
                let nb = nb.expect("profitable dir must have a neighbor");
                prop_assert_eq!(check(nb) + 1, dist);
            }
        }
    }

    #[test]
    fn workload_generators_produce_valid_problems(n in 4u32..24, seed in 0u64..100) {
        prop_assert!(workloads::random_permutation(n, seed).is_permutation());
        prop_assert!(workloads::transpose(n).is_permutation());
        prop_assert!(workloads::rotation(n, seed as u32 % n, (seed / 7) as u32 % n).is_permutation());
        prop_assert!(workloads::column_funnel(n).is_partial_permutation());
        prop_assert!(workloads::hh_random(n, 2, seed).is_hh(2));
    }
}

/// Runs `pb` under `router` twice — once untouched, once with a hook that
/// exchanges the destinations of `a` and `b` during the first step — for
/// `steps` steps, and returns the two packet snapshots with the exchange
/// undone in the second. Lemma 10 (iterated) says they must be equal
/// whenever the exchange leaves every profitable set unchanged throughout.
type Snapshot = Vec<(mesh_routing::engine::Loc, Coord, u64)>;

fn lemma10_snapshots<R: Router>(
    n: u32,
    pb: &RoutingProblem,
    a: PacketId,
    b: PacketId,
    steps: u64,
    plain_router: R,
    adv_router: R,
) -> (Snapshot, Snapshot) {
    let topo = Mesh::new(n);
    let mut plain = Sim::new(&topo, plain_router, pb);
    let mut adv = Sim::new(&topo, adv_router, pb);
    let mut fired = false;
    let mut hook = |ctx: &mut mesh_routing::engine::HookCtx<'_>| {
        if !fired {
            ctx.exchange(a, b);
            fired = true;
        }
    };
    for s in 0..steps {
        plain.step();
        if s == 0 {
            adv.step_with_hook(&mut hook);
        } else {
            adv.step();
        }
    }
    let sa = plain.packet_snapshot();
    let mut sb = adv.packet_snapshot();
    let da = sb[a.index()].1;
    sb[a.index()].1 = sb[b.index()].1;
    sb[b.index()].1 = da;
    (sa, sb)
}

/// Finds a packet pair whose destinations stay strictly northeast of both
/// packets' reachable positions for `margin` steps, so exchanging their
/// destinations provably never changes a profitable set (the Lemma 10
/// precondition).
fn margin_pair(pb: &RoutingProblem, margin: u32) -> Option<(PacketId, PacketId)> {
    for (i, a) in pb.packets.iter().enumerate() {
        if !(a.dst.x > a.src.x + margin && a.dst.y > a.src.y + margin) {
            continue;
        }
        for b in pb.packets.iter().skip(i + 1) {
            if b.dst.x > b.src.x + margin
                && b.dst.y > b.src.y + margin
                && b.dst.x > a.src.x + margin
                && b.dst.y > a.src.y + margin
                && a.dst.x > b.src.x + margin
                && a.dst.y > b.src.y + margin
            {
                return Some((a.id, b.id));
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma_10_exchange_invisible_for_every_shipped_dx_router(
        seed in 0u64..400, k in 1u32..4, steps in 1u64..4
    ) {
        // Lemma 10 holds by parametricity for *every* router behind the
        // `Dx` adapter — including the nonminimal deflection routers, whose
        // packets can also move away from their destinations (hence the
        // extra margin). Exercise each shipped DxRouter through the same
        // exchange scenario.
        let n = 14;
        let pb = workloads::random_permutation(n, seed);
        // Deflection routers can move a packet 1 step away per step, so
        // positions drift at most `steps` in any coordinate.
        let margin = steps as u32 + 1;
        let pair = margin_pair(&pb, margin);
        prop_assume!(pair.is_some());
        let (pa, pb_id) = pair.unwrap();

        macro_rules! check {
            ($name:expr, $mk:expr) => {{
                let (sa, sb) = lemma10_snapshots(n, &pb, pa, pb_id, steps, $mk, $mk);
                prop_assert!(sa == sb, "Lemma 10 violated for {}", $name);
            }};
        }
        use mesh_routing::routers::{BoundedDeflect, HotPotato, WestFirst};
        check!("dim-order(xy)", Dx::new(DimOrder::new(k)));
        check!("dim-order(yx)", Dx::new(DimOrder::yx(k)));
        check!("alt-adaptive", Dx::new(AltAdaptive::new(k)));
        check!("theorem15", Dx::new(Theorem15::new(k)));
        check!("west-first", Dx::new(WestFirst::new(k)));
        check!("hot-potato", Dx::new(HotPotato::new(n)));
        check!("bounded-deflect", Dx::new(BoundedDeflect::new(n, k, 1)));
    }

    #[test]
    fn total_moves_equals_sum_of_packet_hops(pb in partial_permutation(12), k in 1u32..4) {
        // The engine's global move counter must equal the sum of per-packet
        // hop counts, for completing, stalling, and deflecting routers alike.
        let topo = Mesh::new(12);
        use mesh_routing::routers::HotPotato;

        let mut t15 = Sim::new(&topo, Dx::new(Theorem15::new(k)), &pb);
        t15.run(500_000).expect("theorem15 always delivers");
        let hops: u64 = t15.packet_hops().iter().map(|&h| h as u64).sum();
        prop_assert_eq!(t15.report().total_moves, hops);

        // Small central queues may deadlock — the invariant must hold at
        // the cap too.
        let mut dor = Sim::new(&topo, Dx::new(DimOrder::new(k)), &pb);
        let _ = dor.run(2_000);
        let hops: u64 = dor.packet_hops().iter().map(|&h| h as u64).sum();
        prop_assert_eq!(dor.report().total_moves, hops);

        // Nonminimal: deflections are moves too.
        let mut hp = Sim::new(&topo, Dx::new(HotPotato::new(12)), &pb);
        let _ = hp.run(2_000);
        let hops: u64 = hp.packet_hops().iter().map(|&h| h as u64).sum();
        prop_assert_eq!(hp.report().total_moves, hops);
    }

    #[test]
    fn delivered_packets_of_minimal_routers_take_minimal_paths(
        pb in partial_permutation(14), k in 1u32..4
    ) {
        // Minimality, per packet: every *delivered* packet's hop count is
        // exactly its source→destination L1 distance — even in runs that
        // stall at the step cap with some packets still in flight.
        let topo = Mesh::new(14);
        let mut t15 = Sim::new(&topo, Dx::new(Theorem15::new(k)), &pb);
        t15.run(500_000).expect("theorem15 always delivers");
        for p in &pb.packets {
            prop_assert_eq!(
                t15.packet_hops()[p.id.index()],
                topo.distance(p.src, p.dst),
            );
        }

        let mut dor = Sim::new(&topo, Dx::new(DimOrder::new(k)), &pb);
        let _ = dor.run(2_000);
        for p in &pb.packets {
            if dor.delivered_step(p.id).is_some() {
                prop_assert_eq!(
                    dor.packet_hops()[p.id.index()],
                    topo.distance(p.src, p.dst),
                );
            }
        }
    }

    #[test]
    fn bounded_queues_never_exceed_k(pb in partial_permutation(12), k in 1u32..5) {
        // The capacity contract of §2: no queue ever holds more than k
        // packets, whether the run completes or stalls at the cap.
        use mesh_routing::routers::{BoundedDeflect, HotPotato, WestFirst};
        let topo = Mesh::new(12);
        macro_rules! check {
            ($name:expr, $router:expr, $cap:expr) => {{
                let mut sim = Sim::new(&topo, $router, &pb);
                let _ = sim.run(2_000);
                let q = sim.report().max_queue;
                prop_assert!(q <= $cap, "{}: max_queue {} > {}", $name, q, $cap);
            }};
        }
        check!("dim-order", Dx::new(DimOrder::new(k)), k);
        check!("alt-adaptive", Dx::new(AltAdaptive::new(k)), k);
        check!("west-first", Dx::new(WestFirst::new(k)), k);
        check!("farthest-first", FarthestFirst::new(k), k);
        check!("theorem15", Dx::new(Theorem15::new(k)), k);
        check!("bounded-deflect", Dx::new(BoundedDeflect::new(12, k, 1)), k);
        check!("hot-potato", Dx::new(HotPotato::new(12)), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn watchdog_never_fires_on_fault_free_dynamic_bernoulli(
        rate_permille in 1u64..=80,
        seed in 0u64..10_000,
    ) {
        // The protocol-aware watchdog semantics must not misread lawful
        // quiet (packets released far apart, empty stretches between
        // injections) as a wedge on a healthy network.
        let n = 8;
        let rate = rate_permille as f64 / 1000.0;
        let pb = workloads::dynamic_bernoulli(n, rate, 4 * n as u64, seed);
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(n);
        let config = SimConfig {
            watchdog: Some(8 * n as u64),
            ..SimConfig::default()
        };
        // Plain run under the watchdog…
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
        let res = sim.run(500_000);
        prop_assert!(res.is_ok(), "raw watchdog fired fault-free: {:?}", res.err());
        // …and the reliable transport under the protocol-aware watchdog
        // (quiet waits between lawful timer deadlines included).
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
        let mut tp = Transport::new(&pb, BackoffPolicy::exponential(16, 48, 4), seed ^ 0x5a);
        let res = sim.run_with_protocol(500_000, &mut tp);
        prop_assert!(res.is_ok(), "protocol watchdog fired fault-free: {:?}", res.err());
        prop_assert!(tp.exactly_once());
    }

    #[test]
    fn open_system_conservation_and_caps_hold_every_step(
        rate_permille in 50u64..2_000,
        policy_sel in 0u8..4,
        ttl in 4u64..64,
        max_deferred in 0u32..8,
        seed in 0u64..10_000,
        k in 1u32..4,
        arch_sel in 0u8..2,
        tile_sel in 0u8..4,
    ) {
        // The overload seam's accounting identity — injected == delivered +
        // in-flight + shed + expired + lost — and the §2 queue-capacity
        // contract must hold after *every* step, for any offered load
        // (including far past saturation), any admission policy, and any
        // tile geometry, not just at quiescence.
        let n = 6;
        let rate = rate_permille as f64 / 1000.0;
        let pb = workloads::open_bernoulli(n, rate, 6 * n as u64, seed);
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(n);
        let admission = match policy_sel {
            0 => AdmissionPolicy::DeferIndefinitely,
            1 => AdmissionPolicy::RejectNew,
            2 => AdmissionPolicy::DropOldestDeferred { max_deferred },
            _ => AdmissionPolicy::DeadlineExpiry { ttl },
        };
        let (tile_threads, tiles) = match tile_sel {
            0 => (1, None),
            1 => (2, None),
            2 => (1, Some((2, 2))),
            _ => (4, Some((3, 2))),
        };
        let config = SimConfig {
            admission,
            tile_threads,
            tiles,
            ..SimConfig::default()
        };
        macro_rules! check {
            ($router:expr, $cap:expr) => {{
                let mut sim = Sim::with_config(&topo, $router, &pb, config);
                for _ in 0..(12 * n as u64) {
                    let done = sim.step();
                    sim.assert_conservation();
                    sim.assert_queue_invariants();
                    prop_assert!(sim.report().max_queue <= $cap);
                    if done {
                        break;
                    }
                }
            }};
        }
        check!(Dx::new(DimOrder::new(k)), k);
        check!(Dx::new(Theorem15::new(k)), k);
    }

    #[test]
    fn overload_watchdog_never_fires_on_saturated_fault_free_runs(
        rate_permille in 300u64..3_000,
        policy_sel in 0u8..3,
        seed in 0u64..10_000,
    ) {
        // The Overload watchdog must distinguish "saturated but resolving
        // packets" (deliveries, sheds, or expiries every window) from a
        // genuine wedge: on a fault-free open-system run it never fires,
        // however far past saturation the offered load sits.
        let n = 6;
        let rate = rate_permille as f64 / 1000.0;
        let schedule = SteadyConfig { warmup: 16, window: 16, windows: 3 };
        let pb = workloads::open_bernoulli(n, rate, schedule.horizon(), seed);
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(n);
        let admission = match policy_sel {
            0 => AdmissionPolicy::RejectNew,
            1 => AdmissionPolicy::DropOldestDeferred { max_deferred: 4 },
            _ => AdmissionPolicy::DeadlineExpiry { ttl: 4 * n as u64 },
        };
        let config = SimConfig {
            admission,
            watchdog: Some(8 * n as u64),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, Dx::new(DimOrder::new(2)), &pb, config);
        let res = sim.run_steady(schedule);
        prop_assert!(
            res.is_ok(),
            "overload watchdog fired on a fault-free saturated run: {:?}",
            res.err().map(|e| e.kind()),
        );
    }

    #[test]
    fn duplicate_suppression_never_drops_a_first_delivery(seed in 0u64..5_000) {
        // An aggressively small timeout floods the mesh with premature
        // retransmissions under a lossy outage plan; however many copies
        // race, every payload must reach the application exactly once.
        let n = 8;
        let pb = workloads::random_partial_permutation(n, 0.4, seed);
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(n);
        let faults = std::sync::Arc::new(
            FaultPlan::random_outages(n, 0.2, 8 * n as u64, seed ^ 0x0dd).compile(),
        );
        let config = SimConfig {
            watchdog: Some(2048),
            ..SimConfig::default()
        };
        let mut sim = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(2)), std::sync::Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        let mut tp = Transport::new(&pb, BackoffPolicy::fixed(4), seed ^ 0xf00d);
        let steps = sim.run_with_protocol(500_000, &mut tp)
            .expect("transient outages are always recoverable");
        let rep = tp.report(steps);
        prop_assert!(rep.exactly_once, "{:?}", rep);
        prop_assert_eq!(rep.delivered, pb.len());
        prop_assert_eq!(rep.acked, pb.len());
        // Suppressed duplicates never leak into the application count even
        // when the premature timer produced plenty of them.
        prop_assert!(rep.duplicate_deliveries as usize + rep.delivered >= rep.delivered);
    }
}
