//! Differential battery for the flat-slab queue arena: the engine's
//! queues now live in one contiguous slab with per-(node, slot) lengths
//! and a per-node occupancy bitmask (`NodeGrid`, DESIGN.md §14). This
//! battery drives simulations while maintaining a **retained reference
//! shadow** of every queue — the exact per-queue `Vec` contents the old
//! `Vec<Vec<_>>` grid held — and checks after every step that the arena
//! tells the same story: identical FIFO contents, order-preserving
//! removal/retain/expiry (survivors keep their relative order, arrivals
//! append at the tail), and bitmask ↔ `queue_lens` ↔ load-index
//! agreement (via `Sim::assert_queue_invariants`), across routers ×
//! fault plans × admission policies × tile geometries.

use mesh_routing::engine::QueueKind;
use mesh_routing::prelude::*;
use mesh_routing::routers::HotPotato;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// The retained reference shadow: per-(node, queue-slot) FIFO contents,
/// exactly what each queue held after the previous step.
type Shadow = HashMap<(u32, u32, usize), Vec<PacketId>>;

/// A queue's step-over-step transition is legal iff the new contents are
/// an order-preserving subsequence of the old (removals — transmit
/// dequeues, deadline expiry — shift survivors down without reordering)
/// followed by a tail of packets the queue did not hold before (arrivals
/// and injections append). This is precisely the `Vec` push/remove/retain
/// semantics the arena must reproduce.
fn legal_transition(old: &[PacketId], new: &[PacketId]) -> bool {
    let split = new
        .iter()
        .position(|p| !old.contains(p))
        .unwrap_or(new.len());
    let (survivors, fresh) = new.split_at(split);
    let mut it = old.iter();
    survivors.iter().all(|s| it.any(|o| o == s)) && fresh.iter().all(|p| !old.contains(p))
}

/// Checks one stepped simulation against (and then advances) the shadow:
/// every queue's transition is legal, `packets_at` agrees with the
/// flattened `queues_at` (the two zero-allocation slab iterators), and
/// the grid's internal indices agree with its contents.
fn check_against_shadow<T: Topology, R: Router>(
    sim: &Sim<'_, T, R>,
    n: u32,
    shadow: &mut Shadow,
) -> Result<(), TestCaseError> {
    sim.assert_queue_invariants();
    for y in 0..n {
        for x in 0..n {
            let c = Coord::new(x, y);
            let flat: Vec<PacketId> = sim.packets_at(c).collect();
            let mut seen = 0usize;
            let mut prev_slot = None;
            for (kind, q) in sim.queues_at(c) {
                let slot = kind.slot();
                prop_assert!(
                    prev_slot < Some(slot),
                    "queues_at yielded slots out of order at {c}"
                );
                prev_slot = Some(slot);
                prop_assert!(!q.is_empty(), "queues_at yielded an empty queue at {c}");
                prop_assert!(
                    &flat[seen..seen + q.len()] == q,
                    "packets_at disagrees with queues_at at {c}"
                );
                seen += q.len();
                let old = shadow.remove(&(x, y, slot)).unwrap_or_default();
                prop_assert!(
                    legal_transition(&old, q),
                    "illegal queue transition at {c} {kind:?}: {old:?} -> {q:?}"
                );
                shadow.insert((x, y, slot), q.to_vec());
            }
            prop_assert_eq!(seen, flat.len());
            // Queues that drained to empty this step made a trivially
            // legal transition (removing everything preserves order);
            // drop their shadow entries so the next step starts clean.
            let mut occ = 0u8;
            for (kind, _) in sim.queues_at(c) {
                occ |= 1 << kind.slot();
            }
            shadow.retain(|&(sx, sy, slot), _| !(sx == x && sy == y && occ & (1 << slot) == 0));
        }
    }
    Ok(())
}

/// Steps a simulation to completion (bounded), shadow-checking every step.
fn run_shadowed<T: Topology, R: Router>(
    sim: &mut Sim<'_, T, R>,
    n: u32,
    max_steps: u64,
) -> Result<(), TestCaseError> {
    let mut shadow = Shadow::new();
    check_against_shadow(sim, n, &mut shadow)?;
    for _ in 0..max_steps {
        let done = sim.step();
        check_against_shadow(sim, n, &mut shadow)?;
        if done {
            return Ok(());
        }
    }
    Ok(())
}

/// An arbitrary partial permutation on a side-`n` grid (same construction
/// as `tests/properties.rs`).
fn partial_permutation(n: u32) -> impl Strategy<Value = RoutingProblem> {
    let cells = (n * n) as usize;
    (
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
    )
        .prop_map(move |(mut srcs, mut dsts)| {
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            let m = srcs.len().min(dsts.len());
            let pairs = srcs[..m]
                .iter()
                .zip(&dsts[..m])
                .map(|(&s, &d)| (Coord::new(s % n, s / n), Coord::new(d % n, d / n)));
            RoutingProblem::from_pairs(n, "prop", pairs)
        })
}

/// Static partial permutations or dynamic Bernoulli arrivals. (The
/// vendored proptest shim has no `prop_oneof`; select by index.)
fn workload(n: u32) -> impl Strategy<Value = RoutingProblem> {
    (0u32..2, partial_permutation(n), (1u64..=50, 0u64..5_000)).prop_map(
        move |(which, pp, (rate_permille, seed))| {
            if which == 0 {
                pp
            } else {
                workloads::dynamic_bernoulli(n, rate_permille as f64 / 1000.0, 4 * n as u64, seed)
            }
        },
    )
}

/// Tile geometry × worker threads, degenerate cases included (same
/// spectrum as `tests/tiling_equivalence.rs`): the tiled step dequeues
/// through raw arena pointers, so the shadow must hold under every
/// geometry too.
fn tile_config(n: u32) -> impl Strategy<Value = (Option<(u32, u32)>, usize)> {
    (0u32..4, 1u32..=n, 1u32..=n, 0usize..4).prop_map(move |(which, tx, ty, ti)| {
        let geometry = match which {
            0 => None,
            1 => Some((1, 1)),
            2 => Some((n, n)),
            _ => Some((tx, ty)),
        };
        (geometry, [1usize, 2, 4, 8][ti])
    })
}

/// The four admission policies, by index (no `prop_oneof` in the shim).
fn admission(which: u32, n: u32) -> AdmissionPolicy {
    match which {
        0 => AdmissionPolicy::DeferIndefinitely,
        1 => AdmissionPolicy::RejectNew,
        2 => AdmissionPolicy::DropOldestDeferred { max_deferred: 4 },
        _ => AdmissionPolicy::DeadlineExpiry { ttl: 3 * n as u64 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena vs shadow across the router spectrum (central-queue and
    /// per-inlink architectures) and tile geometries, fault-free.
    #[test]
    fn arena_matches_shadow_across_routers(
        pb in workload(12),
        tc in tile_config(12),
        k in 1u32..4,
        router in 0usize..4,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        let topo = Mesh::new(12);
        let config = SimConfig { tile_threads: threads, tiles, ..SimConfig::default() };
        match router {
            0 => run_shadowed(&mut Sim::with_config(&topo, Dx::new(DimOrder::new(k)), &pb, config), 12, 2_000)?,
            1 => run_shadowed(&mut Sim::with_config(&topo, Dx::new(Theorem15::new(k)), &pb, config), 12, 2_000)?,
            2 => run_shadowed(&mut Sim::with_config(&topo, Dx::new(WestFirst::new(k)), &pb, config), 12, 2_000)?,
            _ => run_shadowed(&mut Sim::with_config(&topo, Dx::new(HotPotato::new(12)), &pb, config), 12, 2_000)?,
        }
    }

    /// Arena vs shadow under random fault plans (outages freeze queues,
    /// degradations clamp acceptance, losses delete in-flight packets —
    /// none of which may corrupt slab order or the occupancy indices).
    #[test]
    fn arena_matches_shadow_under_faults(
        pb in partial_permutation(10),
        rate_permille in 0u64..=200,
        fault_seed in 0u64..5_000,
    ) {
        prop_assume!(!pb.is_empty());
        let n = 10u32;
        let topo = Mesh::new(n);
        let faults = Arc::new(FaultPlan::random(n, rate_permille as f64 / 1000.0, 6 * n as u64, fault_seed).compile());
        let config = SimConfig { watchdog: Some(8 * n as u64), ..SimConfig::default() };
        let mut sim = Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
            &pb,
            config,
            faults.as_ref().clone(),
        );
        run_shadowed(&mut sim, n, 2_000)?;
    }

    /// Arena vs shadow under every admission policy over open-system
    /// arrivals: deferred staging, shedding, and deadline expiry all
    /// mutate queues through retain-style sweeps whose survivor order
    /// must match the reference semantics. High rates push the unbounded
    /// injection slot past its initial inline capacity, forcing the
    /// grow-by-rebuild path.
    #[test]
    fn arena_matches_shadow_under_admission(
        which in 0u32..4,
        rate_permille in 50u64..=900,
        seed in 0u64..5_000,
        tc in tile_config(8),
    ) {
        let n = 8u32;
        let (tiles, threads) = tc;
        let pb = workloads::dynamic_bernoulli(n, rate_permille as f64 / 1000.0, 6 * n as u64, seed);
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(n);
        let config = SimConfig {
            admission: admission(which, n),
            tile_threads: threads,
            tiles,
            ..SimConfig::default()
        };
        let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(1)), &pb, config);
        run_shadowed(&mut sim, n, 1_500)?;
    }
}

/// A burst of same-origin packets overflows the injection slot's initial
/// inline capacity (k cells), forcing the slab to grow by rebuild — the
/// queue must stay FIFO across the reallocation and the run must still
/// deliver everything.
#[test]
fn injection_slot_growth_preserves_order() {
    let n = 6u32;
    let topo = Mesh::new(n);
    let src = Coord::new(0, 0);
    let pairs: Vec<(Coord, Coord)> = (0..(n * n))
        .map(|i| (src, Coord::new(i % n, i / n)))
        .collect();
    let pb = RoutingProblem::from_pairs(n, "burst", pairs);
    let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(1)), &pb);
    let mut shadow = Shadow::new();
    let mut steps = 0u64;
    loop {
        let done = sim.step();
        check_against_shadow(&sim, n, &mut shadow).unwrap();
        steps += 1;
        assert!(steps < 10_000, "burst run did not complete");
        if done {
            break;
        }
    }
    let rep = sim.report();
    assert_eq!(rep.delivered, (n * n) as usize);
}

/// `queues_at` labels slots with the right `QueueKind` for both
/// architectures: the single central queue, and inlink/injection slots
/// under per-inlink queueing.
#[test]
fn queues_at_labels_kinds() {
    let n = 4u32;
    let topo = Mesh::new(n);
    let pb = workloads::random_permutation(n, 7);
    // Central architecture: every occupied queue is the central one.
    let sim = Sim::new(&topo, Dx::new(DimOrder::new(2)), &pb);
    for y in 0..n {
        for x in 0..n {
            for (kind, q) in sim.queues_at(Coord::new(x, y)) {
                assert_eq!(kind, QueueKind::Central);
                assert!(!q.is_empty());
            }
        }
    }
    // Per-inlink architecture: at step 0 all packets sit in injection.
    let sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
    for y in 0..n {
        for x in 0..n {
            for (kind, _) in sim.queues_at(Coord::new(x, y)) {
                assert_eq!(kind, QueueKind::Injection);
            }
        }
    }
}
