//! Cross-crate integration tests: every algorithm against every workload
//! family, checking delivery, minimality, queue discipline, and determinism.

use mesh_routing::prelude::*;

/// Workloads on a side-27 mesh (power of 3 so §6 can run everywhere).
fn workload_suite(n: u32) -> Vec<RoutingProblem> {
    vec![
        workloads::random_permutation(n, 1),
        workloads::random_partial_permutation(n, 0.5, 2),
        workloads::transpose(n),
        workloads::rotation(n, n / 2, 1),
        workloads::hotspot(n, 3, 3),
        workloads::column_funnel(n),
    ]
}

fn always_terminating_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::GreedyUnbounded,
        Algorithm::DimOrder { k: 27 * 27 },
        Algorithm::Theorem15 { k: 1 },
        Algorithm::Theorem15 { k: 4 },
        Algorithm::Section6,
        Algorithm::Section6Improved,
    ]
}

#[test]
fn every_algorithm_delivers_every_workload() {
    let n = 27;
    for pb in workload_suite(n) {
        for algo in always_terminating_algorithms() {
            let out = mesh_routing::route(algo, &pb);
            assert!(
                out.completed,
                "{} failed on {} ({}/{} delivered)",
                out.algorithm, pb.label, out.delivered, out.total_packets
            );
            assert_eq!(out.delivered, pb.len());
        }
    }
}

#[test]
fn minimal_algorithms_do_exactly_total_work() {
    // Every router here is minimal: total link traversals must equal the
    // sum of source→destination distances.
    let n = 27;
    for pb in workload_suite(n) {
        for algo in always_terminating_algorithms() {
            let out = mesh_routing::route(algo, &pb);
            assert_eq!(
                out.total_moves,
                pb.total_work(),
                "{} on {}: moves != work",
                out.algorithm,
                pb.label
            );
        }
    }
}

#[test]
fn no_algorithm_beats_the_diameter_bound() {
    let n = 27;
    for pb in workload_suite(n) {
        let lb = pb.diameter_bound() as u64;
        for algo in always_terminating_algorithms() {
            let out = mesh_routing::route(algo, &pb);
            assert!(
                out.steps >= lb,
                "{} claims {} steps < diameter bound {}",
                out.algorithm,
                out.steps,
                lb
            );
        }
    }
}

#[test]
fn queue_bounds_are_respected() {
    let n = 27;
    for pb in workload_suite(n) {
        for k in [1u32, 2, 4] {
            let out = mesh_routing::route(Algorithm::Theorem15 { k }, &pb);
            assert!(
                out.max_queue <= k,
                "theorem15(k={k}) queue {}",
                out.max_queue
            );
            let out = mesh_routing::route_with_cap(Algorithm::DimOrder { k }, &pb, 50_000);
            assert!(out.max_queue <= k);
            let out = mesh_routing::route_with_cap(Algorithm::AltAdaptive { k }, &pb, 50_000);
            assert!(out.max_queue <= k);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let pb = workloads::random_permutation(27, 99);
    for algo in always_terminating_algorithms() {
        let a = mesh_routing::route(algo, &pb);
        let b = mesh_routing::route(algo, &pb);
        assert_eq!(a.steps, b.steps, "{}", a.algorithm);
        assert_eq!(a.total_moves, b.total_moves);
        assert_eq!(a.max_queue, b.max_queue);
    }
}

#[test]
fn dynamic_traffic_drains_under_theorem15() {
    // §5's dynamic setting: Bernoulli injection, destination-independent
    // timing. Theorem 15's router must deliver everything eventually.
    let pb = workloads::dynamic_bernoulli(16, 0.02, 64, 5);
    let topo = Mesh::new(16);
    let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
    let steps = sim.run(1_000_000).expect("dynamic traffic must drain");
    assert!(steps >= 1);
    assert!(sim.report().completed);
}

#[test]
fn hh_traffic_routes() {
    let pb = workloads::hh_random(16, 3, 8);
    let topo = Mesh::new(16);
    // h = 3 fits k = 4 queues statically…
    let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(4)), &pb);
    sim.run(1_000_000).expect("h-h traffic must drain");
    // …and the engine's pending-injection path covers h > k.
    let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(1)), &pb);
    sim.run(1_000_000)
        .expect("h > k must drain via deferred injection");
}

#[test]
fn torus_runs_dimension_order() {
    let pb = workloads::random_permutation(16, 3);
    let topo = Torus::new(16);
    let mut sim = Sim::new(&topo, Dx::new(DimOrder::new(16 * 16)), &pb);
    let steps = sim.run(100_000).expect("torus routing");
    // Torus diameter is n (= 16): with wraparound minimal paths the greedy
    // router finishes fast.
    assert!(steps <= 64, "torus took {steps}");
    let work: u64 = pb
        .packets
        .iter()
        .map(|p| topo.distance(p.src, p.dst) as u64)
        .sum();
    assert_eq!(sim.report().total_moves, work);
}

#[test]
fn section6_handles_partial_and_skewed_permutations() {
    for pb in [
        workloads::random_partial_permutation(81, 0.1, 4),
        workloads::random_partial_permutation(81, 0.9, 5),
        workloads::column_funnel(81),
        workloads::hotspot(81, 9, 6),
    ] {
        let r = Section6Router::new().route(&pb);
        assert_eq!(r.delivered, pb.len(), "{}", pb.label);
        assert!(r.max_node_load <= 834);
        assert!(r.scheduled_steps <= 972 * 81);
    }
}
