//! Differential battery for tile-sharded execution: for arbitrary
//! problems, routers, fault plans, tile geometries, and thread counts, a
//! tiled run must be **bit-identical** to the sequential engine — same
//! per-step delivery/loss streams, same packet trajectories, same report,
//! same diagnostics, same watchdog verdicts. Parallelism is an execution
//! strategy, never a semantics change.

use mesh_routing::prelude::*;
use mesh_routing::routers::HotPotato;
use proptest::prelude::*;
use std::sync::Arc;

/// An arbitrary partial permutation on a side-`n` grid (same construction
/// as `tests/properties.rs`).
fn partial_permutation(n: u32) -> impl Strategy<Value = RoutingProblem> {
    let cells = (n * n) as usize;
    (
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
    )
        .prop_map(move |(mut srcs, mut dsts)| {
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            let m = srcs.len().min(dsts.len());
            let pairs = srcs[..m]
                .iter()
                .zip(&dsts[..m])
                .map(|(&s, &d)| (Coord::new(s % n, s / n), Coord::new(d % n, d / n)));
            RoutingProblem::from_pairs(n, "prop", pairs)
        })
}

/// Static partial permutations or dynamic Bernoulli arrivals. (The
/// vendored proptest shim has no `prop_oneof`; select by index.)
fn workload(n: u32) -> impl Strategy<Value = RoutingProblem> {
    (0u32..2, partial_permutation(n), (1u64..=50, 0u64..5_000)).prop_map(
        move |(which, pp, (rate_permille, seed))| {
            if which == 0 {
                pp
            } else {
                workloads::dynamic_bernoulli(n, rate_permille as f64 / 1000.0, 4 * n as u64, seed)
            }
        },
    )
}

/// Tile geometry × worker threads, degenerate cases included: `None`
/// (bands, one per thread), a single tile covering the mesh, 1×1 tiles,
/// and arbitrary (non-square, ragged) rectangles. `tile_threads = 1` with
/// an explicit geometry exercises the staging/merge machinery without
/// concurrency.
fn tile_config(n: u32) -> impl Strategy<Value = (Option<(u32, u32)>, usize)> {
    (0u32..4, 1u32..=n, 1u32..=n, 0usize..4).prop_map(move |(which, tx, ty, ti)| {
        let geometry = match which {
            0 => None,           // bands, one per thread
            1 => Some((1, 1)),   // single tile covering the mesh
            2 => Some((n, n)),   // 1×1 tiles
            _ => Some((tx, ty)), // arbitrary (non-square, ragged)
        };
        (geometry, [1usize, 2, 4, 8][ti])
    })
}

/// Steps `seq` (sequential) and `par` (tiled) in lockstep, checking after
/// every step that the observable state is identical: done flags, the
/// per-step delivery and loss event streams, and the full packet
/// configuration. Optionally audits the tiled sim's queue invariants each
/// step. Ends by comparing the rendered reports and diagnostics.
fn assert_lockstep_identical<T: Topology, R: Router>(
    seq: &mut Sim<'_, T, R>,
    par: &mut Sim<'_, T, R>,
    max_steps: u64,
    audit: bool,
) -> Result<(), TestCaseError> {
    for step in 0..max_steps {
        let a = seq.step();
        let b = par.step();
        prop_assert!(a == b, "done flags diverged at step {}", step);
        prop_assert!(
            seq.last_step_deliveries() == par.last_step_deliveries(),
            "delivery stream diverged at step {}",
            step
        );
        prop_assert!(
            seq.last_step_losses() == par.last_step_losses(),
            "loss stream diverged at step {}",
            step
        );
        prop_assert!(
            seq.packet_snapshot() == par.packet_snapshot(),
            "packet configuration diverged at step {}",
            step
        );
        if audit {
            par.assert_queue_invariants();
        }
        if a {
            break;
        }
    }
    prop_assert_eq!(
        serde_json::to_string(&seq.report()).unwrap(),
        serde_json::to_string(&par.report()).unwrap()
    );
    prop_assert_eq!(seq.diagnostics(), par.diagnostics());
    Ok(())
}

/// Builds the sequential/tiled pair for a fault-free problem and runs the
/// lockstep comparison.
fn check_fault_free<R: Router>(
    pb: &RoutingProblem,
    mk: impl Fn() -> R,
    tiles: Option<(u32, u32)>,
    threads: usize,
) -> Result<(), TestCaseError> {
    let topo = Mesh::new(pb.n);
    let mut seq = Sim::new(&topo, mk(), pb);
    let config = SimConfig {
        tile_threads: threads,
        tiles,
        ..SimConfig::default()
    };
    let mut par = Sim::with_config(&topo, mk(), pb, config);
    assert_lockstep_identical(&mut seq, &mut par, 3_000, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: fault-free equivalence across the shipped router
    /// spectrum — minimal deterministic (dim-order), minimal adaptive
    /// (theorem15), partially adaptive (west-first), and nonminimal
    /// deflection (hot-potato) — for arbitrary workloads, tile
    /// geometries, and thread counts.
    #[test]
    fn tiled_execution_is_bit_identical_fault_free(
        pb in workload(16),
        tc in tile_config(16),
        k in 1u32..4,
        router in 0usize..4,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        match router {
            0 => check_fault_free(&pb, || Dx::new(DimOrder::new(k)), tiles, threads)?,
            1 => check_fault_free(&pb, || Dx::new(Theorem15::new(k)), tiles, threads)?,
            2 => check_fault_free(&pb, || Dx::new(WestFirst::new(k)), tiles, threads)?,
            _ => check_fault_free(&pb, || Dx::new(HotPotato::new(16)), tiles, threads)?,
        }
    }

    /// Property 2: equivalence under an arbitrary fault plan with the
    /// watchdog armed — the whole run outcome (steps-to-completion or the
    /// exact `SimError` variant with its full diagnostic snapshot) must
    /// match, not just the happy path.
    #[test]
    fn tiled_execution_is_bit_identical_under_faults(
        pb in partial_permutation(12),
        tc in tile_config(12),
        rate_permille in 0u64..=200,
        fault_seed in 0u64..10_000,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        let n = 12u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = Arc::new(FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile());
        let config = SimConfig {
            watchdog: Some(8 * n as u64),
            ..SimConfig::default()
        };
        let mk_sim = |cfg: SimConfig| {
            Sim::with_faults(
                &topo,
                FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
                &pb,
                cfg,
                faults.as_ref().clone(),
            )
        };
        let mut seq = mk_sim(config);
        let mut par = mk_sim(SimConfig {
            tile_threads: threads,
            tiles,
            ..config
        });
        let res_seq = seq.run(20_000);
        let res_par = par.run(20_000);
        prop_assert!(res_seq == res_par, "run outcomes diverged: {:?} vs {:?}", res_seq, res_par);
        prop_assert_eq!(
            serde_json::to_string(&seq.report()).unwrap(),
            serde_json::to_string(&par.report()).unwrap()
        );
        prop_assert_eq!(seq.packet_snapshot(), par.packet_snapshot());
        prop_assert_eq!(seq.diagnostics(), par.diagnostics());
    }

    /// Property 3: the per-step queue invariants (every bounded queue
    /// within capacity, occupancy index in sync, packet location records
    /// consistent) hold after *every* tiled step — not merely at the end
    /// of the run — while the tiled run tracks the sequential one under
    /// faults in lockstep.
    #[test]
    fn tiled_queue_invariants_hold_every_step(
        pb in workload(12),
        tc in tile_config(12),
        k in 1u32..4,
        rate_permille in 0u64..=150,
        fault_seed in 0u64..10_000,
    ) {
        prop_assume!(!pb.is_empty());
        let (tiles, threads) = tc;
        let n = 12u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = Arc::new(FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile());
        let mk_sim = |cfg: SimConfig| {
            Sim::with_faults(
                &topo,
                FaultAware::new(Dx::new(DimOrder::new(k)), Arc::clone(&faults)),
                &pb,
                cfg,
                faults.as_ref().clone(),
            )
        };
        let mut seq = mk_sim(SimConfig::default());
        let mut par = mk_sim(SimConfig {
            tile_threads: threads,
            tiles,
            ..SimConfig::default()
        });
        assert_lockstep_identical(&mut seq, &mut par, 1_500, true)?;
    }
}
