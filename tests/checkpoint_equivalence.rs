//! Crash-safety differential battery for checkpoint/restore: a run
//! killed at an arbitrary step and resumed from its last checkpoint must
//! be **bit-identical** to one that never stopped — same per-step
//! delivery/loss streams, same packet trajectories, same rendered
//! reports, same watchdog verdicts. Checkpointing is an observer, never a
//! semantics change; and a malformed or mismatched snapshot is a typed
//! error, never a panic or a silently wrong resumption.

use mesh_routing::engine::snapshot::CheckpointSink;
use mesh_routing::engine::{MemorySink, Snapshot, SnapshotError, SnapshotHook};
use mesh_routing::prelude::*;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An arbitrary partial permutation on a side-`n` grid (same construction
/// as `tests/properties.rs`).
fn partial_permutation(n: u32) -> impl Strategy<Value = RoutingProblem> {
    let cells = (n * n) as usize;
    (
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
        proptest::collection::vec(0..cells as u32, 1..cells.min(64)),
    )
        .prop_map(move |(mut srcs, mut dsts)| {
            srcs.sort_unstable();
            srcs.dedup();
            dsts.sort_unstable();
            dsts.dedup();
            let m = srcs.len().min(dsts.len());
            let pairs = srcs[..m]
                .iter()
                .zip(&dsts[..m])
                .map(|(&s, &d)| (Coord::new(s % n, s / n), Coord::new(d % n, d / n)));
            RoutingProblem::from_pairs(n, "prop", pairs)
        })
}

/// Static partial permutations or dynamic Bernoulli arrivals.
fn workload(n: u32) -> impl Strategy<Value = RoutingProblem> {
    (0u32..2, partial_permutation(n), (1u64..=50, 0u64..5_000)).prop_map(
        move |(which, pp, (rate_permille, seed))| {
            if which == 0 {
                pp
            } else {
                workloads::dynamic_bernoulli(n, rate_permille as f64 / 1000.0, 4 * n as u64, seed)
            }
        },
    )
}

/// The per-step observable record of a run: each step's delivery and loss
/// event streams.
type Streams = Vec<(Vec<PacketId>, Vec<PacketId>)>;

/// Steps `sim` to completion (or `max` steps), recording every step's
/// event streams and taking a snapshot after each `cadence`-th step —
/// exactly what the checkpointing driver would do.
fn run_recording<T: Topology, R: Router>(
    sim: &mut Sim<'_, T, R>,
    cadence: u64,
    max: u64,
) -> (Streams, Vec<Snapshot>)
where
    R::NodeState: Serialize,
{
    let mut streams = Streams::new();
    let mut snaps = Vec::new();
    loop {
        let done = sim.step();
        streams.push((
            sim.last_step_deliveries().to_vec(),
            sim.last_step_losses().to_vec(),
        ));
        if sim.steps().is_multiple_of(cadence) {
            snaps.push(sim.snapshot());
        }
        if done || sim.steps() >= max {
            return (streams, snaps);
        }
    }
}

/// The core differential check for raw (non-protocol) runs: run the
/// reference to completion recording streams and checkpoints, "kill" at
/// `kill_at`, restore from the last checkpoint at or before the kill
/// (after a JSON round-trip, so the serialized format itself is under
/// test), resume — possibly under a different execution strategy
/// (`resume_config`) — and demand the identical tail.
#[allow(clippy::too_many_arguments)]
fn check_raw_resume<T: Topology, R: Router>(
    topo: &T,
    mk: impl Fn() -> R,
    pb: &RoutingProblem,
    faults: Option<CompiledFaults>,
    run_config: SimConfig,
    resume_config: SimConfig,
    cadence: u64,
    kill_at: u64,
) -> Result<(), TestCaseError>
where
    R::NodeState: Serialize + Deserialize,
{
    let mut reference = match &faults {
        Some(f) => Sim::with_faults(topo, mk(), pb, run_config, f.clone()),
        None => Sim::with_config(topo, mk(), pb, run_config),
    };
    let (streams, snaps) = run_recording(&mut reference, cadence, 3_000);
    let Some(snap) = snaps.iter().rev().find(|s| s.step <= kill_at) else {
        return Ok(()); // killed before the first checkpoint: nothing to resume
    };
    let snap = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON round-trip");
    let mut resumed = Sim::restore(topo, mk(), resume_config, faults, &snap)
        .expect("a snapshot the engine wrote must restore");
    prop_assert_eq!(resumed.steps(), snap.step);
    let mut i = snap.step as usize;
    while i < streams.len() {
        let done = resumed.step();
        prop_assert!(
            resumed.last_step_deliveries() == streams[i].0.as_slice()
                && resumed.last_step_losses() == streams[i].1.as_slice(),
            "event streams diverged at step {} (resumed from checkpoint at {})",
            i + 1,
            snap.step
        );
        i += 1;
        if done {
            break;
        }
    }
    prop_assert_eq!(resumed.steps(), reference.steps());
    prop_assert_eq!(
        serde_json::to_string(&resumed.report()).unwrap(),
        serde_json::to_string(&reference.report()).unwrap()
    );
    prop_assert_eq!(resumed.packet_snapshot(), reference.packet_snapshot());
    prop_assert_eq!(resumed.diagnostics(), reference.diagnostics());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole property, fault-free: for arbitrary workloads, routers,
    /// checkpoint cadences, and kill steps, a resumed run is
    /// bit-identical — including when the resumed run uses a different
    /// tile-thread count than the original (execution strategy is not
    /// simulated state).
    #[test]
    fn resumed_runs_are_bit_identical_fault_free(
        pb in workload(12),
        cadence in 1u64..24,
        kill_at in 0u64..200,
        router in 0usize..3,
        threads in 0usize..3,
    ) {
        prop_assume!(!pb.is_empty());
        let topo = Mesh::new(pb.n);
        let resume_config = SimConfig {
            tile_threads: [1usize, 2, 4][threads],
            ..SimConfig::default()
        };
        match router {
            0 => check_raw_resume(&topo, || Dx::new(DimOrder::new(2)), &pb, None,
                SimConfig::default(), resume_config, cadence, kill_at)?,
            1 => check_raw_resume(&topo, || Dx::new(Theorem15::new(2)), &pb, None,
                SimConfig::default(), resume_config, cadence, kill_at)?,
            _ => check_raw_resume(&topo, || Dx::new(WestFirst::new(2)), &pb, None,
                SimConfig::default(), resume_config, cadence, kill_at)?,
        }
    }

    /// Tentpole property, faults active and the original run tiled: the
    /// checkpoint must carry fault-dependent state (losses, stalls,
    /// deferred injections) and the fingerprint must accept the
    /// re-supplied plan.
    #[test]
    fn resumed_runs_are_bit_identical_under_faults(
        pb in partial_permutation(10),
        cadence in 1u64..16,
        kill_at in 0u64..300,
        rate_permille in 0u64..=150,
        fault_seed in 0u64..10_000,
        threads in 0usize..3,
    ) {
        prop_assume!(!pb.is_empty());
        let n = 10u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = Arc::new(FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile());
        let run_config = SimConfig {
            tile_threads: [1usize, 2, 4][threads],
            ..SimConfig::default()
        };
        check_raw_resume(
            &topo,
            || FaultAware::new(Dx::new(Theorem15::new(2)), Arc::clone(&faults)),
            &pb,
            Some(faults.as_ref().clone()),
            run_config,
            SimConfig::default(),
            cadence,
            kill_at,
        )?;
    }

    /// Tentpole property, ARQ protocol runs under lossy faults: the
    /// checkpoint carries the transport's full state (sequence numbers,
    /// seen-sets, timers, backoff RNG); a run resumed mid-protocol —
    /// possibly mid-retransmission — ends with the byte-identical
    /// `TransportReport` and `SimReport`, and the identical outcome.
    #[test]
    fn resumed_protocol_runs_are_bit_identical(
        pb in partial_permutation(8),
        cadence in 1u64..32,
        pick in 0usize..64,
        rate_permille in 0u64..=120,
        fault_seed in 0u64..10_000,
    ) {
        prop_assume!(!pb.is_empty());
        let n = 8u32;
        let topo = Mesh::new(n);
        let rate = rate_permille as f64 / 1000.0;
        let faults = FaultPlan::random(n, rate, 6 * n as u64, fault_seed).compile();
        let policy = BackoffPolicy::exponential(16, 128, 8);
        let config = SimConfig {
            watchdog: Some(512),
            checkpoint_every: Some(cadence),
            ..SimConfig::default()
        };
        let mk_sim = |cfg| Sim::with_faults(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(2)), Arc::new(faults.clone())),
            &pb,
            cfg,
            faults.clone(),
        );
        let mut sim_a = mk_sim(config);
        let mut tp_a = Transport::new(&pb, policy, 5);
        let mut sink = MemorySink::default();
        let res_a = sim_a.run_with_protocol_checkpointed(20_000, &mut tp_a, &mut sink);
        if sink.checkpoints.is_empty() {
            return Ok(()); // finished (or failed) before the first checkpoint
        }
        let snap = &sink.checkpoints[pick % sink.checkpoints.len()];
        let snap = Snapshot::from_json(&snap.to_json()).expect("snapshot JSON round-trip");
        let mut sim_b = Sim::restore(
            &topo,
            FaultAware::new(Dx::new(Theorem15::new(2)), Arc::new(faults.clone())),
            SimConfig { watchdog: Some(512), ..SimConfig::default() },
            Some(faults.clone()),
            &snap,
        ).expect("a snapshot the engine wrote must restore");
        let mut tp_b = Transport::new(&pb, policy, 5);
        tp_b.restore_state(snap.protocol.as_ref().expect("protocol slot"))
            .expect("transport state must restore");
        let res_b = sim_b.run_with_protocol(20_000, &mut tp_b);
        prop_assert!(res_a == res_b, "outcomes diverged: {:?} vs {:?}", res_a, res_b);
        prop_assert_eq!(
            serde_json::to_string(&tp_a.report(sim_a.steps())).unwrap(),
            serde_json::to_string(&tp_b.report(sim_b.steps())).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&sim_a.report()).unwrap(),
            serde_json::to_string(&sim_b.report()).unwrap()
        );
        prop_assert_eq!(sim_a.packet_snapshot(), sim_b.packet_snapshot());
    }
}

/// Satellite: a checkpoint taken *between* an ARQ data loss and its
/// retransmission resumes to exactly-once delivery with the identical
/// transport report. The scenario is pinned: the payload's first crossing
/// of (1,0)→E is eaten around step 2, the fixed(8) timer fires around
/// step 9, and the cadence-4 checkpoint at step 4 lands in between — the
/// restored transport must carry the armed timer and the recorded loss.
#[test]
fn checkpoint_between_loss_and_retransmission_resumes_exactly_once() {
    let n = 4;
    let topo = Mesh::new(n);
    let pb = RoutingProblem::from_pairs(n, "one", [(Coord::new(0, 0), Coord::new(3, 0))]);
    let faults = FaultPlan::none(n)
        .lossy(Coord::new(1, 0), Dir::East, 0, Some(6))
        .compile();
    let policy = BackoffPolicy::fixed(8);
    let config = SimConfig {
        watchdog: Some(128),
        checkpoint_every: Some(4),
        ..SimConfig::default()
    };
    let mut sim_a = Sim::with_faults(
        &topo,
        Dx::new(Theorem15::new(2)),
        &pb,
        config,
        faults.clone(),
    );
    let mut tp_a = Transport::new(&pb, policy, 1);
    let steps_a = sim_a
        .run_with_protocol_checkpointed(10_000, &mut tp_a, &mut MemoryAt4::default())
        .unwrap();
    let rep_a = tp_a.report(steps_a);
    assert!(rep_a.exactly_once);
    assert!(rep_a.data_lost >= 1 && rep_a.retransmits >= 1, "{rep_a:?}");

    // Re-run to harvest the checkpoint cleanly (MemoryAt4 kept only step 4).
    let mut sim = Sim::with_faults(
        &topo,
        Dx::new(Theorem15::new(2)),
        &pb,
        config,
        faults.clone(),
    );
    let mut tp = Transport::new(&pb, policy, 1);
    let mut sink = MemorySink::default();
    sim.run_with_protocol_checkpointed(10_000, &mut tp, &mut sink)
        .unwrap();
    let snap = sink
        .checkpoints
        .iter()
        .find(|s| s.step == 4)
        .expect("cadence-4 run must checkpoint at step 4");

    let mut sim_b = Sim::restore(
        &topo,
        Dx::new(Theorem15::new(2)),
        SimConfig {
            watchdog: Some(128),
            ..SimConfig::default()
        },
        Some(faults),
        snap,
    )
    .unwrap();
    let mut tp_b = Transport::new(&pb, policy, 1);
    tp_b.restore_state(snap.protocol.as_ref().unwrap()).unwrap();
    // The checkpoint sits between the loss and the recovery: the loss is
    // recorded, no retransmission has fired yet, the payload is still
    // outstanding with its timer armed.
    let mid = tp_b.report(4);
    assert!(mid.data_lost >= 1, "{mid:?}");
    assert_eq!(mid.retransmits, 0, "{mid:?}");
    assert_eq!(tp_b.outstanding(), 1);

    let steps_b = sim_b.run_with_protocol(10_000, &mut tp_b).unwrap();
    assert_eq!(steps_b, steps_a);
    assert!(tp_b.exactly_once());
    assert_eq!(
        serde_json::to_string(&tp_b.report(steps_b)).unwrap(),
        serde_json::to_string(&rep_a).unwrap()
    );
}

/// A sink keeping only the step-4 checkpoint — exercises a custom
/// [`CheckpointSink`] implementation through the public trait.
#[derive(Default)]
struct MemoryAt4 {
    snap: Option<Snapshot>,
}

impl CheckpointSink for MemoryAt4 {
    fn on_checkpoint(&mut self, snap: &Snapshot) {
        if snap.step == 4 {
            self.snap = Some(snap.clone());
        }
    }
}

/// Malformed input never panics: truncation, non-objects, and unknown
/// format versions are each a distinct typed error.
#[test]
fn malformed_snapshot_files_are_typed_errors() {
    assert!(matches!(
        Snapshot::from_json("{\"format_version\": 1, \"trunc"),
        Err(SnapshotError::Parse(_))
    ));
    assert!(matches!(
        Snapshot::from_json("[1, 2, 3]"),
        Err(SnapshotError::Parse(_))
    ));
    assert!(matches!(
        Snapshot::from_json("{\"n\": 8}"),
        Err(SnapshotError::Parse(_)) // format_version missing (reads as null)
    ));
    let err = Snapshot::from_json("{\"format_version\": 99}").unwrap_err();
    assert_eq!(
        err,
        SnapshotError::UnknownVersion {
            found: 99,
            supported: mesh_routing::engine::SNAPSHOT_FORMAT_VERSION
        }
    );
    assert!(matches!(
        Snapshot::read_from(Path::new("/nonexistent/ckpt.json")),
        Err(SnapshotError::Io(_))
    ));
    // A version-1 file with a mangled body is Corrupt, not a panic.
    assert!(matches!(
        Snapshot::from_json("{\"format_version\": 1, \"step\": \"NaN\"}"),
        Err(SnapshotError::Corrupt(_))
    ));
}

/// Builds a mid-flight snapshot of a small deterministic run, for the
/// tampering tests below.
fn mid_run_snapshot() -> (Mesh, RoutingProblem, Snapshot) {
    let n = 8;
    let topo = Mesh::new(n);
    let pb = workloads::random_permutation(n, 42);
    let mut sim = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
    for _ in 0..6 {
        sim.step();
    }
    let snap = sim.snapshot();
    (topo, pb, snap)
}

/// Internally inconsistent snapshots — dangling queue entries, broken
/// occupancy sums, permuted injection orders, counter drift — are
/// [`SnapshotError::Corrupt`], never a wrong-but-running simulation and
/// never a panic.
#[test]
fn corrupt_snapshots_are_rejected() {
    let (topo, _pb, snap) = mid_run_snapshot();
    let restore = |s: &Snapshot| {
        Sim::restore(
            &topo,
            Dx::new(Theorem15::new(2)),
            SimConfig::default(),
            None,
            s,
        )
        .map(|_| ())
    };
    restore(&snap).expect("the untampered snapshot restores");

    // Occupancy/slot-sum mismatch: drop a packet from a queue but leave
    // its location claiming it is still there.
    let mut t = snap.clone();
    let qi = t.grid.lens.iter().position(|&l| l > 0).unwrap();
    t.grid.lens[qi] -= 1;
    let cut: u32 = t.grid.lens[..=qi].iter().sum();
    t.grid.slab.remove(cut as usize);
    assert!(matches!(restore(&t), Err(SnapshotError::Corrupt(_))));

    // A queued packet whose own record disagrees with the queue.
    let mut t = snap.clone();
    let pid = t.grid.slab[0];
    t.packets.loc[pid.index()] = mesh_routing::engine::Loc::Delivered;
    assert!(matches!(restore(&t), Err(SnapshotError::Corrupt(_))));

    // Injection order no longer a permutation.
    let mut t = snap.clone();
    t.packets.inject_order[0] = t.packets.inject_order[1];
    assert!(matches!(restore(&t), Err(SnapshotError::Corrupt(_))));

    // Progress counter drift.
    let mut t = snap.clone();
    t.progress_tamper();
    assert!(matches!(restore(&t), Err(SnapshotError::Corrupt(_))));

    // Active worklist missing an occupied node.
    let mut t = snap.clone();
    t.grid.active.pop();
    assert!(matches!(restore(&t), Err(SnapshotError::Corrupt(_))));
}

/// Restoring under the wrong environment — different topology side,
/// different algorithm, wrong fault plan — is a
/// [`SnapshotError::Mismatch`] naming the disagreement.
#[test]
fn environment_mismatches_are_rejected() {
    let (_topo, _pb, snap) = mid_run_snapshot();

    let bigger = Mesh::new(9);
    assert!(matches!(
        Sim::restore(
            &bigger,
            Dx::new(Theorem15::new(2)),
            SimConfig::default(),
            None,
            &snap
        ),
        Err(SnapshotError::Mismatch(_))
    ));

    let topo = Mesh::new(8);
    assert!(matches!(
        Sim::restore(
            &topo,
            Dx::new(Theorem15::new(3)),
            SimConfig::default(),
            None,
            &snap
        ),
        Err(SnapshotError::Mismatch(_))
    ));

    // The snapshot was taken fault-free; a live fault plan must be refused.
    let faults = FaultPlan::random_outages(8, 0.2, 64, 7).compile();
    if !faults.is_empty() {
        assert!(matches!(
            Sim::restore(
                &topo,
                Dx::new(Theorem15::new(2)),
                SimConfig::default(),
                Some(faults),
                &snap
            ),
            Err(SnapshotError::Mismatch(_))
        ));
    }
}

/// The directory sink: periodic `ckpt_<step>.json` files written
/// atomically, a `diag_<step>.json` post-mortem beside them when the run
/// fails, and a round-trip through the on-disk file resumes the run.
#[test]
fn directory_sink_persists_checkpoints_and_failure_diagnostics() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("checkpoint_sink_test");
    let _ = std::fs::remove_dir_all(&dir);
    let n = 8;
    let topo = Mesh::new(n);
    let pb = RoutingProblem::from_pairs(n, "far", [(Coord::new(0, 0), Coord::new(7, 7))]);
    let config = SimConfig {
        checkpoint_every: Some(4),
        ..SimConfig::default()
    };
    let mut sim = Sim::with_config(&topo, Dx::new(Theorem15::new(2)), &pb, config);
    let mut sink = mesh_routing::engine::DirectorySink::new(&dir).unwrap();
    // Cap the run well short of the 14 steps the packet needs: the run
    // fails with StepCap and the sink must write the post-mortem.
    let err = sim.run_checkpointed(8, &mut sink).unwrap_err();
    assert_eq!(err.kind(), "step-cap");
    assert!(sink.error.is_none(), "{:?}", sink.error);
    assert!(dir.join("ckpt_4.json").is_file());
    assert!(dir.join("ckpt_8.json").is_file());
    assert!(dir.join("diag_8.json").is_file(), "failure post-mortem");
    assert_eq!(
        sink.last_checkpoint().unwrap(),
        dir.join("ckpt_8.json").as_path()
    );

    // Resume from the on-disk checkpoint and finish the journey.
    let snap = Snapshot::read_from(&dir.join("ckpt_8.json")).unwrap();
    let mut resumed = Sim::restore(
        &topo,
        Dx::new(Theorem15::new(2)),
        SimConfig::default(),
        None,
        &snap,
    )
    .unwrap();
    let steps = resumed.run(1_000).unwrap();
    assert_eq!(steps, 14, "L1 distance of (0,0)→(7,7)");
    assert!(resumed.done());

    // The uninterrupted reference agrees byte-for-byte.
    let mut reference = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
    reference.run(1_000).unwrap();
    assert_eq!(
        serde_json::to_string(&resumed.report()).unwrap(),
        serde_json::to_string(&reference.report()).unwrap()
    );
}

/// Format-regression fixture: a committed version-1 snapshot file must
/// keep restoring (and resuming to the same outcome as a from-scratch
/// run) in every future build. If the format changes, bump
/// `SNAPSHOT_FORMAT_VERSION` and regenerate the fixture — this test
/// pins the compatibility promise.
#[test]
fn v1_snapshot_fixture_restores_and_resumes() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/snapshot_v1.json");
    let snap = Snapshot::read_from(&path).unwrap();
    // The fixture is intentionally kept at format v1: its optional steady
    // environment block is simply absent, and the current reader must keep
    // accepting it (SNAPSHOT_MIN_READ_VERSION).
    assert_eq!(
        snap.format_version,
        mesh_routing::engine::SNAPSHOT_MIN_READ_VERSION
    );
    assert!(snap.steady.is_none());
    assert_eq!(snap.n, 8);
    assert_eq!(snap.step, 6);

    let topo = Mesh::new(8);
    let mut resumed = Sim::restore(
        &topo,
        Dx::new(Theorem15::new(2)),
        SimConfig::default(),
        None,
        &snap,
    )
    .unwrap();
    resumed.run(10_000).unwrap();
    assert!(resumed.done());

    let pb = workloads::random_permutation(8, 42);
    let mut fresh = Sim::new(&topo, Dx::new(Theorem15::new(2)), &pb);
    fresh.run(10_000).unwrap();
    assert_eq!(
        serde_json::to_string(&resumed.report()).unwrap(),
        serde_json::to_string(&fresh.report()).unwrap()
    );
}

/// Regenerates `tests/fixtures/snapshot_v1.json` (the environment is the
/// one `mid_run_snapshot` builds and the fixture test re-creates). Run
/// manually with `--ignored` only if the fixture's *content* must change;
/// the written file is pinned to format v1 regardless of the current
/// writer version, because the fixture exists to prove old files stay
/// readable.
#[test]
#[ignore = "fixture generator; run manually after a format-version bump"]
fn regenerate_v1_snapshot_fixture() {
    let (_topo, _pb, mut snap) = mid_run_snapshot();
    snap.format_version = mesh_routing::engine::SNAPSHOT_MIN_READ_VERSION;
    snap.steady = None;
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/snapshot_v1.json");
    snap.write_to(&path).unwrap();
}

trait ProgressTamper {
    fn progress_tamper(&mut self);
}

impl ProgressTamper for Snapshot {
    fn progress_tamper(&mut self) {
        // The progress block is crate-private; drift it through the JSON
        // form instead, which is also a check that tampered *files* (not
        // just tampered structs) are caught.
        let mut text = self.to_json();
        let needle = "\"delivered\":";
        let at = text.find(needle).unwrap() + needle.len();
        let end = text[at..].find(',').unwrap() + at;
        let v: usize = text[at..end].trim().parse().unwrap();
        text.replace_range(at..end, &format!(" {}", v + 1));
        *self = Snapshot::from_json(&text).unwrap();
    }
}
