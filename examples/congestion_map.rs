//! Congestion heat maps: where queues build up under different routers.
//!
//! Routes the same hotspot workload with the oblivious dimension-order
//! router and the §2 adaptive router, then prints per-node peak-occupancy
//! heat maps (darker = more queueing). The adaptive router spreads the
//! hotspot's inbound pressure over a wider region.
//!
//! ```sh
//! cargo run --release --example congestion_map [n]
//! ```

use mesh_routing::prelude::*;

fn run_and_map<R: mesh_routing::engine::Router>(
    topo: &Mesh,
    router: R,
    pb: &RoutingProblem,
) -> (String, mesh_routing::engine::NodeField, SimReport) {
    let mut sim = Sim::new(topo, router, pb);
    let _ = sim.run(200_000);
    (
        sim.report().algorithm.clone(),
        sim.congestion_map(),
        sim.report(),
    )
}

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let topo = Mesh::new(n);
    let pb = workloads::hotspot(n, (n / 6).max(2), 3);
    println!("workload: {}\n", pb.label);

    for (name, map, rep) in [
        run_and_map(&topo, Dx::new(DimOrder::new(4)), &pb),
        run_and_map(&topo, Dx::new(AltAdaptive::new(4)), &pb),
        run_and_map(
            &topo,
            Dx::new(mesh_routing::routers::HotPotato::new(n)),
            &pb,
        ),
    ] {
        println!(
            "--- {name}: steps={}{} max queue={} ---",
            rep.steps,
            if rep.completed { "" } else { " (stalled)" },
            rep.max_queue
        );
        println!("{}", map.ascii());
        let hot = map.hottest(3);
        println!(
            "hottest nodes: {}\n",
            hot.iter()
                .map(|(x, y, v)| format!("({x},{y})={v}"))
                .collect::<Vec<_>>()
                .join("  ")
        );
    }
}
