//! The §6 algorithm end to end: O(n) time, O(1) queues, minimal paths —
//! on several workloads and mesh sizes, with the Theorem 34 bounds printed
//! next to the measurements.
//!
//! ```sh
//! cargo run --release --example constant_queue_routing [max_n]
//! ```
//!
//! Sizes are powers of 3 up to `max_n` (default 243; n=729 takes ~15 s).

use mesh_routing::prelude::*;
use mesh_routing::Section6Router;

fn main() {
    let max_n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(243);

    println!(
        "{:<6} {:<22} {:>12} {:>9} {:>12} {:>9} {:>9}",
        "n", "workload", "scheduled", "sched/n", "quiescent", "quiet/n", "max load"
    );
    let mut n = 27;
    while n <= max_n {
        let workloads: Vec<RoutingProblem> = vec![
            workloads::random_permutation(n, 11),
            workloads::transpose(n),
            workloads::rotation(n, n / 2, n / 3),
        ];
        for pb in workloads {
            let r = Section6Router::new().route(&pb);
            let short = pb.label.split('(').next().unwrap_or("?");
            println!(
                "{:<6} {:<22} {:>12} {:>9.1} {:>12} {:>9.1} {:>9}",
                n,
                short,
                r.scheduled_steps,
                r.steps_per_n(),
                r.quiescent_steps,
                r.quiescent_steps as f64 / n as f64,
                r.max_node_load,
            );
            assert!(r.scheduled_steps <= 972 * n as u64, "Theorem 34");
            assert!(r.max_node_load <= 834, "Lemma 28");
        }
        n *= 3;
    }

    println!();
    println!("Theorem 34: every permutation routes in ≤ 972n steps with ≤ 834 packets");
    println!("per node. The 'scheduled' column charges each stage its provable");
    println!("worst-case duration (what synchronized nodes must wait); 'quiescent'");
    println!("is the same execution with stages ending as soon as no rule can fire.");
    println!("Both are O(n); the improved §6.4 constants (--improved in the bench");
    println!("harness) cut the scheduled figure below 564n.");
}
