//! The motivating scenario from §1: adaptive routing "potentially avoids
//! network bottlenecks by routing packets around hot spots". Compare the
//! oblivious dimension-order router against the §2 alternating
//! minimal-adaptive router on hotspot traffic with small queues.
//!
//! ```sh
//! cargo run --release --example hotspot_adaptive [n] [k]
//! ```

use mesh_routing::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(48);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let cap = 64 * (n as u64) * (n as u64);

    println!(
        "{:<8} {:<20} {:>18} {:>18}",
        "side", "workload", "dim-order steps", "alt-adaptive steps"
    );
    for side in [2u32, 4, 6, 8] {
        for seed in [1u64, 2] {
            let pb = workloads::hotspot(n, side, seed);
            let d = mesh_routing::route_with_cap(Algorithm::DimOrder { k }, &pb, cap);
            let a = mesh_routing::route_with_cap(Algorithm::AltAdaptive { k }, &pb, cap);
            let fmt = |o: &RouteOutcome| {
                if o.completed {
                    format!("{}", o.steps)
                } else {
                    format!("stalled@{}/{}", o.delivered, o.total_packets)
                }
            };
            println!(
                "{:<8} {:<20} {:>18} {:>18}",
                side,
                format!("hotspot(seed={seed})"),
                fmt(&d),
                fmt(&a)
            );
        }
    }

    println!();
    println!("Both routers are destination-exchangeable with k={k} queues; the adaptive");
    println!("one may divert around the congested region. Neither escapes the paper's");
    println!("Ω(n²/k²) worst case — run the lower_bound_demo example to see why.");
}
