//! Quickstart: route one permutation with every algorithm in the paper and
//! compare steps and queue usage.
//!
//! ```sh
//! cargo run --release --example quickstart [n] [seed]
//! ```
//!
//! `n` must be a power of 3 so the §6 algorithm can participate
//! (default 81).

use mesh_routing::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(81);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let problem = workloads::random_permutation(n, seed);

    println!(
        "workload: {}  (diameter bound 2n-2 = {})",
        problem.label,
        2 * n - 2
    );
    println!(
        "{:<24} {:>9} {:>10} {:>10} {:>10}",
        "algorithm", "steps", "steps/n", "max queue", "delivered"
    );

    let k = 4;
    for algo in [
        Algorithm::GreedyUnbounded,
        Algorithm::DimOrder { k: n * n },
        Algorithm::Theorem15 { k },
        Algorithm::Section6,
        Algorithm::Section6Improved,
    ] {
        let out = mesh_routing::route(algo, &problem);
        println!(
            "{:<24} {:>9} {:>10.1} {:>10} {:>7}/{}",
            out.algorithm,
            out.steps,
            out.steps as f64 / n as f64,
            out.max_queue,
            out.delivered,
            out.total_packets,
        );
        if let Some(s6) = &out.section6 {
            println!(
                "{:<24} {:>9} {:>10.1}   (same run, stages ending at quiescence)",
                "  └ quiescent",
                s6.quiescent_steps,
                s6.quiescent_steps as f64 / n as f64,
            );
        }
    }

    println!();
    println!("Note the trade-off the paper is about: the greedy router is fast but its");
    println!("queues grow with n; Theorem 15 bounds queues at k but needs O(n²/k) steps");
    println!("in the worst case; the §6 router is O(n) time AND O(1) queues — at the");
    println!("price of reading full destination addresses (it is not in the");
    println!("destination-exchangeable class the Ω(n²/k²) lower bound covers).");
}
