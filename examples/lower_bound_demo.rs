//! The §3 adversary in action: build the hard permutation for a
//! destination-exchangeable router, then watch the router take Ω(n²/k²)
//! steps on it — while an ordinary random permutation routes in ~2n.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo [n] [k]
//! ```
//!
//! `n` must be at least `24(k+2)²` (default n=216, k=1).

use mesh_routing::prelude::*;
use mesh_topo::Mesh;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(216);
    let k: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let params = match GeneralParams::new(n, k) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot build construction for n={n}, k={k}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "§3 construction for n={n}, k={k}: cn={}, dn={}, p={} packets/class, l={} boxes",
        params.cn, params.dn, params.p, params.l
    );
    println!(
        "proven lower bound: ⌊l⌋·dn = {} steps  (diameter bound would be {})",
        params.bound_steps(),
        2 * n - 2
    );

    let topo = Mesh::new(n);
    let cons = GeneralConstruction::new(params);

    // Run the adversary against the dimension-order router (checking the
    // paper's Lemmas 1-8 at every step), then replay without the adversary.
    println!("\nrunning the adversary against dim-order(k={k}) with invariant checking…");
    let outcome = cons.run(&topo, mesh_routing::routers::dim_order(k), true);
    println!(
        "construction done: {} exchanges performed, {} packets still undelivered at step {}",
        outcome.exchanges, outcome.undelivered_at_bound, outcome.bound_steps
    );

    println!("replaying the constructed permutation (no adversary)…");
    let report = verify_lower_bound(
        &topo,
        mesh_routing::routers::dim_order(k),
        &outcome,
        Some(200_000),
    );
    println!(
        "replay at step {}: {} undelivered (Theorem 13 ✓), configuration matches construction: {} (Lemma 12 ✓)",
        report.bound_steps, report.undelivered_at_bound, report.replay_matches_construction
    );
    match report.completion_steps {
        Some(total) => println!("router finished the hard permutation after {total} steps"),
        None => println!("router did not finish within the cap (bounded queues can stall — the bound only strengthens)"),
    }

    // Contrast with a random permutation.
    let random = workloads::random_permutation(n, 1);
    let out = mesh_routing::route(Algorithm::DimOrder { k: n * n }, &random);
    println!(
        "\nfor contrast, dim-order with ample queues routes a random permutation in {} steps (≈{:.2}·n)",
        out.steps,
        out.steps as f64 / n as f64
    );
    println!(
        "hard permutation forces ≥ {} steps (≈{:.2}·n) with k={k} queues — ratio {:.0}×",
        report.bound_steps,
        report.bound_steps as f64 / n as f64,
        report.bound_steps as f64 / out.steps as f64
    );
}
