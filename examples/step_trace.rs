//! Step-by-step trace of a tiny routing run: prints the grid after every
//! step with per-node packet counts, plus the schedule of the step — a
//! debugging/teaching view of the §2 model in motion.
//!
//! ```sh
//! cargo run --release --example step_trace [algorithm] [n]
//! ```
//!
//! Algorithms: dim-order | alt-adaptive | theorem15 | hot-potato (default
//! dim-order, n = 8).

use mesh_routing::prelude::*;

fn render(topo: &Mesh, get: impl Fn(Coord) -> usize) -> String {
    let n = topo.side();
    let mut out = String::new();
    for y in (0..n).rev() {
        for x in 0..n {
            let c = get(Coord::new(x, y));
            out.push(match c {
                0 => '.',
                1..=9 => char::from_digit(c as u32, 10).unwrap(),
                _ => '#',
            });
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn trace<R: mesh_routing::engine::Router>(topo: &Mesh, router: R, pb: &RoutingProblem) {
    let mut sim = Sim::new(topo, router, pb);
    println!(
        "algorithm: {}   workload: {}",
        sim.report().algorithm,
        pb.label
    );
    println!("initial:\n{}", render(topo, |c| sim.packets_at(c).count()));
    let mut step = 0u64;
    loop {
        let mut scheduled = 0usize;
        let mut hook = |ctx: &mut mesh_routing::engine::HookCtx<'_>| {
            scheduled = ctx.moves.len();
        };
        let done = sim.step_with_hook(&mut hook);
        step += 1;
        println!(
            "after step {step}: {} scheduled, {}/{} delivered",
            scheduled,
            sim.delivered(),
            sim.num_packets()
        );
        println!("{}", render(topo, |c| sim.packets_at(c).count()));
        if done || step > 200 {
            break;
        }
    }
    let r = sim.report();
    println!(
        "finished: steps={} moves={} max queue={}",
        r.steps, r.total_moves, r.max_queue
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let algo = args.next().unwrap_or_else(|| "dim-order".into());
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let topo = Mesh::new(n);
    let pb = workloads::random_partial_permutation(n, 0.3, 4);
    match algo.as_str() {
        "dim-order" => trace(&topo, Dx::new(DimOrder::new(4)), &pb),
        "alt-adaptive" => trace(&topo, Dx::new(AltAdaptive::new(4)), &pb),
        "theorem15" => trace(&topo, Dx::new(Theorem15::new(2)), &pb),
        "hot-potato" => trace(
            &topo,
            Dx::new(mesh_routing::routers::HotPotato::new(n)),
            &pb,
        ),
        other => {
            eprintln!("unknown algorithm '{other}'");
            std::process::exit(2);
        }
    }
}
